package kinput

import (
	"testing"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/ktime"
)

func newInput(t *testing.T) *Subsystem {
	t.Helper()
	clock := ktime.NewClock()
	return New(kernel.New(clock, hw.NewBus(clock, 1<<16)))
}

func TestDeviceRegistration(t *testing.T) {
	s := newInput(t)
	d, err := s.Register("psmouse")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("psmouse"); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	got, ok := s.Device("psmouse")
	if !ok || got != d {
		t.Fatal("Device lookup failed")
	}
	if err := s.Unregister("psmouse"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister("psmouse"); err == nil {
		t.Fatal("double unregister accepted")
	}
}

func TestEventDelivery(t *testing.T) {
	s := newInput(t)
	d, _ := s.Register("psmouse")
	var got []Event
	d.SetSink(func(e Event) { got = append(got, e) })
	d.ReportRel("REL_X", 5)
	d.ReportKey("BTN_LEFT", 1)
	d.Sync()
	if len(got) != 2 {
		t.Fatalf("events = %d", len(got))
	}
	if got[0].Type != "rel" || got[0].Code != "REL_X" || got[0].Value != 5 {
		t.Fatalf("event[0] = %+v", got[0])
	}
	if got[1].Type != "key" || got[1].Code != "BTN_LEFT" {
		t.Fatalf("event[1] = %+v", got[1])
	}
	ev, syncs := d.Counts()
	if ev != 2 || syncs != 1 {
		t.Fatalf("counts = %d, %d", ev, syncs)
	}
}

func TestEventsWithoutSinkCounted(t *testing.T) {
	s := newInput(t)
	d, _ := s.Register("psmouse")
	d.ReportRel("REL_Y", -3) // no sink attached: counted, not delivered
	ev, _ := d.Counts()
	if ev != 1 {
		t.Fatalf("events = %d", ev)
	}
}

func TestSerioPort(t *testing.T) {
	p := NewSerioPort()
	if err := p.Write(0xFF); err == nil {
		t.Fatal("write to unconnected port accepted")
	}
	var toDevice, toDriver []byte
	p.ConnectDevice(func(b byte) { toDevice = append(toDevice, b) })
	p.ConnectDriver(func(b byte) { toDriver = append(toDriver, b) })
	if err := p.Write(0xF4); err != nil {
		t.Fatal(err)
	}
	p.DeliverToDriver(0xFA)
	if len(toDevice) != 1 || toDevice[0] != 0xF4 {
		t.Fatalf("device side = %v", toDevice)
	}
	if len(toDriver) != 1 || toDriver[0] != 0xFA {
		t.Fatalf("driver side = %v", toDriver)
	}
}
