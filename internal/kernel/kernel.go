package kernel

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/ktime"
)

// Kernel is the simulated operating-system kernel. It owns the virtual
// clock, the hardware bus, module bookkeeping, work queues and CPU
// accounting. One Kernel corresponds to one booted machine in the paper's
// testbed.
type Kernel struct {
	clock *ktime.Clock
	bus   *hw.Bus

	mu      sync.Mutex
	modules map[string]*loadedModule
	oopses  []error
	// strictOops controls whether Oops panics (tests) or records (harness).
	strictOops bool

	accounting *CPUAccounting

	defaultWQ *Workqueue
	irqTable  *irqTable
}

// New boots a simulated kernel around the given clock and bus.
func New(clock *ktime.Clock, bus *hw.Bus) *Kernel {
	k := &Kernel{
		clock:      clock,
		bus:        bus,
		modules:    make(map[string]*loadedModule),
		accounting: &CPUAccounting{},
		strictOops: true,
		irqTable:   &irqTable{byNum: make(map[int]*irqState)},
	}
	k.defaultWQ = k.NewWorkqueue("events")
	return k
}

// Clock returns the kernel's virtual clock.
func (k *Kernel) Clock() *ktime.Clock { return k.clock }

// Bus returns the hardware bus.
func (k *Kernel) Bus() *hw.Bus { return k.bus }

// Accounting returns the global CPU-time accounting.
func (k *Kernel) Accounting() *CPUAccounting { return k.accounting }

// DefaultWorkqueue returns the kernel's shared "events" work queue, the
// analogue of schedule_work.
func (k *Kernel) DefaultWorkqueue() *Workqueue { return k.defaultWQ }

// SetStrictOops selects whether kernel faults panic immediately (true, the
// default, so tests fail loudly) or are recorded for later inspection.
func (k *Kernel) SetStrictOops(strict bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.strictOops = strict
}

// Oops reports a kernel fault: a violated invariant such as sleeping in
// atomic context. In strict mode it panics; otherwise the fault is recorded.
func (k *Kernel) Oops(err error) {
	k.mu.Lock()
	strict := k.strictOops
	k.oopses = append(k.oopses, err)
	k.mu.Unlock()
	if strict {
		panic(err)
	}
}

// Oopses returns the recorded faults.
func (k *Kernel) Oopses() []error {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]error, len(k.oopses))
	copy(out, k.oopses)
	return out
}

// ClearOopses discards recorded faults.
func (k *Kernel) ClearOopses() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.oopses = nil
}

// CPUAccounting accumulates charged CPU time by context kind. The Table 3
// CPU-utilization column is busy time divided by elapsed virtual time.
type CPUAccounting struct {
	mu      sync.Mutex
	process time.Duration
	softirq time.Duration
	hardirq time.Duration
}

func (a *CPUAccounting) charge(kind ContextKind, d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch kind {
	case CtxProcess:
		a.process += d
	case CtxSoftIRQ:
		a.softirq += d
	case CtxHardIRQ:
		a.hardirq += d
	}
}

// Totals reports accumulated CPU time per context kind.
func (a *CPUAccounting) Totals() (process, softirq, hardirq time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.process, a.softirq, a.hardirq
}

// Busy reports the total accumulated CPU time.
func (a *CPUAccounting) Busy() time.Duration {
	p, s, h := a.Totals()
	return p + s + h
}

// Reset zeroes the accounting.
func (a *CPUAccounting) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.process, a.softirq, a.hardirq = 0, 0, 0
}

// Module is a loadable kernel module — in Decaf terms, a driver nucleus
// (plus its registration glue).
type Module interface {
	// ModuleName is the module's unique name.
	ModuleName() string
	// Init is the module's init_module entry, run in process context.
	Init(ctx *Context) error
	// Exit is the module's cleanup_module entry.
	Exit(ctx *Context)
}

type loadedModule struct {
	module Module
	report LoadReport
}

// LoadReport describes one insmod: the paper's Table 3 init-latency metric.
type LoadReport struct {
	// Name is the module name.
	Name string
	// InitLatency is the elapsed virtual time of Init — what the paper
	// measures as "latency to run the insmod module loader".
	InitLatency time.Duration
	// InitBusy is the CPU portion of InitLatency.
	InitBusy time.Duration
}

// LoadModule runs m.Init in a fresh process context and records the module.
// It returns a report with the init latency in virtual time.
func (k *Kernel) LoadModule(m Module) (LoadReport, error) {
	k.mu.Lock()
	if _, dup := k.modules[m.ModuleName()]; dup {
		k.mu.Unlock()
		return LoadReport{}, fmt.Errorf("kernel: module %q already loaded", m.ModuleName())
	}
	k.mu.Unlock()

	ctx := k.NewContext("insmod:" + m.ModuleName())
	if err := m.Init(ctx); err != nil {
		return LoadReport{}, fmt.Errorf("kernel: init of %q failed: %w", m.ModuleName(), err)
	}
	rep := LoadReport{
		Name:        m.ModuleName(),
		InitLatency: ctx.Elapsed(),
		InitBusy:    ctx.Busy(),
	}
	k.mu.Lock()
	k.modules[m.ModuleName()] = &loadedModule{module: m, report: rep}
	k.mu.Unlock()
	return rep, nil
}

// UnloadModule runs the module's Exit and forgets it.
func (k *Kernel) UnloadModule(name string) error {
	k.mu.Lock()
	lm, ok := k.modules[name]
	if !ok {
		k.mu.Unlock()
		return fmt.Errorf("kernel: module %q not loaded", name)
	}
	delete(k.modules, name)
	k.mu.Unlock()
	ctx := k.NewContext("rmmod:" + name)
	lm.module.Exit(ctx)
	return nil
}

// LoadedModules lists loaded module names in sorted order.
func (k *Kernel) LoadedModules() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	names := make([]string, 0, len(k.modules))
	for n := range k.modules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ModuleReport returns the load report for a loaded module.
func (k *Kernel) ModuleReport(name string) (LoadReport, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	lm, ok := k.modules[name]
	if !ok {
		return LoadReport{}, false
	}
	return lm.report, true
}
