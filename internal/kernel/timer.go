package kernel

import (
	"time"

	"decafdrivers/internal/ktime"
)

// TimerFunc is a kernel-timer callback. The kernel runs timers at high
// priority (softirq context): the passed Context reports InAtomic and may
// not block, so a timer callback can never perform an XPC to user level.
// Drivers that need user-level work from a timer must defer to a work queue
// (DeferToWork), exactly as the Decaf E1000 watchdog does.
type TimerFunc func(ctx *Context)

// KTimer is a kernel timer bound to the virtual clock.
type KTimer struct {
	kernel *Kernel
	name   string
	fn     TimerFunc
	ctx    *Context
	inner  *ktime.Timer

	period time.Duration // nonzero for self-rearming timers
	fired  uint64
}

// NewTimer creates a one-shot kernel timer; arm it with Schedule.
func (k *Kernel) NewTimer(name string, fn TimerFunc) *KTimer {
	ctx := k.NewContext("ktimer/" + name)
	ctx.kind = CtxSoftIRQ
	return &KTimer{kernel: k, name: name, fn: fn, ctx: ctx}
}

// Schedule arms the timer to fire after d of virtual time.
func (t *KTimer) Schedule(d time.Duration) {
	t.inner = t.kernel.clock.ScheduleAfter(d, t.fire)
}

// SchedulePeriodic arms the timer to fire every period, rearming itself
// after each expiry — the shape of the E1000 two-second watchdog.
func (t *KTimer) SchedulePeriodic(period time.Duration) {
	if period <= 0 {
		panic("kernel: SchedulePeriodic with non-positive period")
	}
	t.period = period
	t.inner = t.kernel.clock.ScheduleAfter(period, t.fire)
}

func (t *KTimer) fire() {
	t.fired++
	t.fn(t.ctx)
	if t.period > 0 {
		t.inner = t.kernel.clock.ScheduleAfter(t.period, t.fire)
	}
}

// Stop cancels the timer (and any periodic rearming). It reports whether a
// pending expiry was cancelled.
func (t *KTimer) Stop() bool {
	t.period = 0
	if t.inner == nil {
		return false
	}
	return t.inner.Stop()
}

// Fired reports how many times the timer has expired.
func (t *KTimer) Fired() uint64 { return t.fired }

// DeferToWork queues fn on the kernel's default work queue. This is the
// bridge Decaf uses to let high-priority code (IRQ handlers, timers) request
// work that must run in user level: the work item runs later in process
// context, where blocking XPCs are legal.
func (k *Kernel) DeferToWork(fn WorkFunc) {
	k.defaultWQ.Queue(fn)
}
