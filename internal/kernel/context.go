// Package kernel simulates the Linux-kernel execution environment the Decaf
// driver nucleus runs in: modules, interrupt dispatch, kernel timers, work
// queues, and the locking regime (spinlocks, mutexes, semaphores, and the
// Microdrivers combolock).
//
// The property the package exists to enforce and measure is the paper's
// placement constraint (§3.1.3): code running at high priority — in hard-IRQ
// context, or holding a spinlock — must never invoke user-level code, because
// doing so would require invoking the scheduler. Every execution happens
// under a Context that tracks interrupt nesting, atomic (spinlock) depth and
// CPU-time accounting, and the XPC layer refuses user-mode crossings from a
// context that may not block.
package kernel

import (
	"fmt"
	"sync/atomic"
	"time"
)

// ContextKind labels why an execution context exists, mirroring the kernel's
// process / softirq / hardirq distinction.
type ContextKind int

// Context kinds.
const (
	// CtxProcess is ordinary process (kernel thread or syscall) context.
	CtxProcess ContextKind = iota
	// CtxSoftIRQ is deferred-interrupt context (timers, tasklets).
	CtxSoftIRQ
	// CtxHardIRQ is hardware interrupt context.
	CtxHardIRQ
)

func (k ContextKind) String() string {
	switch k {
	case CtxProcess:
		return "process"
	case CtxSoftIRQ:
		return "softirq"
	case CtxHardIRQ:
		return "hardirq"
	default:
		return fmt.Sprintf("ContextKind(%d)", int(k))
	}
}

// Context is the simulated task/interrupt context a piece of kernel or
// driver code executes under. It is passed explicitly where the real kernel
// would consult `current` and preempt counters.
type Context struct {
	kernel *Kernel
	name   string
	kind   ContextKind

	// atomicDepth counts held spinlocks (and spin-mode combolocks);
	// while positive the context must not block.
	atomicDepth int
	// irqDepth counts nested hard-IRQ entries.
	irqDepth int
	// heldSpinlocks names the spinlocks held, for diagnostics.
	heldSpinlocks []string

	// busy is CPU time charged to this context.
	busy time.Duration
	// elapsed is busy plus time spent sleeping (MSleep, XPC wait).
	elapsed time.Duration

	// laneHint caches the XPC submission lane this context last claimed
	// (stored as index+1; zero means no hint). Atomic because the transport
	// reads and refreshes it on the lock-free submit fast path, which other
	// bookkeeping (counter snapshots) may observe concurrently.
	laneHint atomic.Uint32
}

// NewContext creates a process-context execution context owned by the kernel.
func (k *Kernel) NewContext(name string) *Context {
	return &Context{kernel: k, name: name, kind: CtxProcess}
}

// Name reports the context's diagnostic name.
func (c *Context) Name() string { return c.name }

// Kind reports the current context kind (hardirq wins over the base kind).
func (c *Context) Kind() ContextKind {
	if c.irqDepth > 0 {
		return CtxHardIRQ
	}
	return c.kind
}

// Kernel returns the owning kernel.
func (c *Context) Kernel() *Kernel { return c.kernel }

// InIRQ reports whether the context is in hard-IRQ context.
func (c *Context) InIRQ() bool { return c.irqDepth > 0 }

// InAtomic reports whether the context holds any spinlock or is in interrupt
// context; in either case it must not block.
func (c *Context) InAtomic() bool {
	return c.atomicDepth > 0 || c.irqDepth > 0 || c.kind == CtxSoftIRQ
}

// MayBlock reports whether the context is allowed to sleep — the gate for
// mutexes, semaphores and XPC crossings to user level.
func (c *Context) MayBlock() bool { return !c.InAtomic() }

// AssertMayBlock faults the kernel if the context may not block. op names
// the attempted operation for the diagnostic.
func (c *Context) AssertMayBlock(op string) {
	if c.MayBlock() {
		return
	}
	c.kernel.Oops(fmt.Errorf("kernel: %s from atomic context %q (kind=%v, atomic=%d, locks=%v)",
		op, c.name, c.Kind(), c.atomicDepth, c.heldSpinlocks))
}

// enterIRQ/exitIRQ bracket hard-IRQ handler execution.
func (c *Context) enterIRQ() { c.irqDepth++ }

func (c *Context) exitIRQ() {
	if c.irqDepth == 0 {
		panic("kernel: exitIRQ without enterIRQ")
	}
	c.irqDepth--
}

func (c *Context) pushSpin(name string) {
	c.atomicDepth++
	c.heldSpinlocks = append(c.heldSpinlocks, name)
}

func (c *Context) popSpin(name string) {
	if c.atomicDepth == 0 {
		panic(fmt.Sprintf("kernel: unlock of %q with no spinlock held", name))
	}
	c.atomicDepth--
	for i := len(c.heldSpinlocks) - 1; i >= 0; i-- {
		if c.heldSpinlocks[i] == name {
			c.heldSpinlocks = append(c.heldSpinlocks[:i], c.heldSpinlocks[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("kernel: unlock of %q not held by context %q", name, c.name))
}

// HeldSpinlocks returns the names of spinlocks currently held.
func (c *Context) HeldSpinlocks() []string {
	out := make([]string, len(c.heldSpinlocks))
	copy(out, c.heldSpinlocks)
	return out
}

// LaneHint reports the XPC submission lane this context last claimed, if
// any: the affinity cache that lets a steady submitter land on the same
// uncontended lane every crossing.
//
//decaf:hotpath
func (c *Context) LaneHint() (idx uint32, ok bool) {
	v := c.laneHint.Load()
	return v - 1, v != 0
}

// SetLaneHint records the submission lane this context claimed.
//
//decaf:hotpath
func (c *Context) SetLaneHint(idx uint32) { c.laneHint.Store(idx + 1) }

// Charge accounts d of CPU time to this context and to the kernel's global
// accounting bucket for the context's current kind.
func (c *Context) Charge(d time.Duration) {
	if d < 0 {
		panic("kernel: negative charge")
	}
	c.busy += d
	c.elapsed += d
	c.kernel.accounting.charge(c.Kind(), d)
}

// Sleep accounts d of non-CPU elapsed time (the context was blocked).
// It faults the kernel if the context may not block.
func (c *Context) Sleep(d time.Duration) {
	c.AssertMayBlock("sleep")
	c.elapsed += d
}

// MSleep models the driver-visible msleep(ms): elapsed time passes while the
// CPU is free.
func (c *Context) MSleep(ms int) {
	c.Sleep(time.Duration(ms) * time.Millisecond)
}

// UDelay models udelay(us): a busy-wait, legal in atomic context, charged as
// CPU time.
func (c *Context) UDelay(us int) {
	c.Charge(time.Duration(us) * time.Microsecond)
}

// Busy reports total CPU time charged to the context.
func (c *Context) Busy() time.Duration { return c.busy }

// Elapsed reports busy plus slept time for the context.
func (c *Context) Elapsed() time.Duration { return c.elapsed }

// ResetAccounting zeroes the context's accumulated times.
func (c *Context) ResetAccounting() {
	c.busy = 0
	c.elapsed = 0
}
