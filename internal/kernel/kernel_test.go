package kernel

import (
	"errors"
	"testing"
	"time"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/ktime"
)

func newTestKernel() *Kernel {
	clock := ktime.NewClock()
	return New(clock, hw.NewBus(clock, 1<<20))
}

func TestContextDefaults(t *testing.T) {
	k := newTestKernel()
	ctx := k.NewContext("t")
	if ctx.Kind() != CtxProcess {
		t.Fatalf("Kind = %v", ctx.Kind())
	}
	if ctx.InAtomic() || ctx.InIRQ() {
		t.Fatal("fresh process context is atomic")
	}
	if !ctx.MayBlock() {
		t.Fatal("fresh process context may not block")
	}
}

func TestSpinLockMakesContextAtomic(t *testing.T) {
	k := newTestKernel()
	ctx := k.NewContext("t")
	l := NewSpinLock("adapter")
	l.Lock(ctx)
	if !ctx.InAtomic() {
		t.Fatal("not atomic while holding spinlock")
	}
	if got := ctx.HeldSpinlocks(); len(got) != 1 || got[0] != "adapter" {
		t.Fatalf("HeldSpinlocks = %v", got)
	}
	l.Unlock(ctx)
	if ctx.InAtomic() {
		t.Fatal("still atomic after unlock")
	}
}

func TestSleepInAtomicFaults(t *testing.T) {
	k := newTestKernel()
	ctx := k.NewContext("t")
	l := NewSpinLock("x")
	l.Lock(ctx)
	defer l.Unlock(ctx)
	defer func() {
		if recover() == nil {
			t.Fatal("sleep under spinlock did not fault")
		}
	}()
	ctx.MSleep(1)
}

func TestMutexFaultsInAtomic(t *testing.T) {
	k := newTestKernel()
	ctx := k.NewContext("t")
	spin := NewSpinLock("x")
	m := NewMutex("m")
	spin.Lock(ctx)
	defer spin.Unlock(ctx)
	defer func() {
		if recover() == nil {
			t.Fatal("mutex lock under spinlock did not fault")
		}
	}()
	m.Lock(ctx)
}

func TestMutexAllowsBlockingContext(t *testing.T) {
	k := newTestKernel()
	ctx := k.NewContext("t")
	m := NewMutex("m")
	m.Lock(ctx)
	m.Unlock(ctx)
}

func TestNonStrictOopsRecords(t *testing.T) {
	k := newTestKernel()
	k.SetStrictOops(false)
	ctx := k.NewContext("t")
	l := NewSpinLock("x")
	l.Lock(ctx)
	ctx.AssertMayBlock("test-op")
	l.Unlock(ctx)
	if len(k.Oopses()) != 1 {
		t.Fatalf("oopses = %d, want 1", len(k.Oopses()))
	}
	k.ClearOopses()
	if len(k.Oopses()) != 0 {
		t.Fatal("ClearOopses left faults behind")
	}
}

func TestSemaphore(t *testing.T) {
	k := newTestKernel()
	ctx := k.NewContext("t")
	s := NewSemaphore("s", 2)
	s.Down(ctx)
	s.Down(ctx)
	if s.TryDown(ctx) {
		t.Fatal("TryDown succeeded on exhausted semaphore")
	}
	s.Up(ctx)
	if !s.TryDown(ctx) {
		t.Fatal("TryDown failed after Up")
	}
}

func TestSemaphoreUpPastCountPanics(t *testing.T) {
	k := newTestKernel()
	ctx := k.NewContext("t")
	s := NewSemaphore("s", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Up past initial count did not panic")
		}
	}()
	s.Up(ctx)
}

func TestCombolockSpinByDefault(t *testing.T) {
	k := newTestKernel()
	ctx := k.NewContext("t")
	c := NewCombolock("adapter")
	if c.Mode() != "spin" {
		t.Fatalf("Mode = %q, want spin", c.Mode())
	}
	c.Lock(ctx)
	if !ctx.InAtomic() {
		t.Fatal("spin-mode combolock did not enter atomic")
	}
	c.Unlock(ctx)
	st := c.Stats()
	if st.SpinAcquires != 1 || st.SemaphoreAcquires != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCombolockSwitchesToSemaphoreForUser(t *testing.T) {
	k := newTestKernel()
	uctx := k.NewContext("user")
	kctx := k.NewContext("kern")
	c := NewCombolock("adapter")

	c.LockUser(uctx)
	if c.Mode() != "semaphore" {
		t.Fatalf("Mode after user lock = %q", c.Mode())
	}
	if uctx.InAtomic() {
		t.Fatal("user acquisition made context atomic")
	}
	c.UnlockUser(uctx)
	if c.Mode() != "spin" {
		t.Fatalf("Mode after user drain = %q, want spin", c.Mode())
	}

	// Kernel acquisition after revert is a spin acquisition again.
	c.Lock(kctx)
	c.Unlock(kctx)
	st := c.Stats()
	if st.SpinAcquires != 1 || st.SemaphoreAcquires != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCombolockKernelWaitsForUserHolder(t *testing.T) {
	k := newTestKernel()
	uctx := k.NewContext("user")
	kctx := k.NewContext("kern")
	c := NewCombolock("adapter")

	c.LockUser(uctx)
	acquired := make(chan struct{})
	go func() {
		c.Lock(kctx) // must block until user releases
		close(acquired)
		c.Unlock(kctx)
	}()
	select {
	case <-acquired:
		t.Fatal("kernel acquired combolock while user held it")
	case <-time.After(10 * time.Millisecond):
	}
	c.UnlockUser(uctx)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("kernel never acquired combolock after user release")
	}
}

func TestCombolockUnlockUserUnbalancedPanics(t *testing.T) {
	k := newTestKernel()
	ctx := k.NewContext("t")
	c := NewCombolock("x")
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced UnlockUser did not panic")
		}
	}()
	c.UnlockUser(ctx)
}

type testModule struct {
	name     string
	initErr  error
	initMS   int
	exited   bool
	initBusy time.Duration
}

func (m *testModule) ModuleName() string { return m.name }

func (m *testModule) Init(ctx *Context) error {
	if m.initErr != nil {
		return m.initErr
	}
	if m.initMS > 0 {
		ctx.MSleep(m.initMS)
	}
	if m.initBusy > 0 {
		ctx.Charge(m.initBusy)
	}
	return nil
}

func (m *testModule) Exit(ctx *Context) { m.exited = true }

func TestLoadModuleReportsLatency(t *testing.T) {
	k := newTestKernel()
	rep, err := k.LoadModule(&testModule{name: "8139too", initMS: 20, initBusy: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InitLatency != 25*time.Millisecond {
		t.Fatalf("InitLatency = %v, want 25ms", rep.InitLatency)
	}
	if rep.InitBusy != 5*time.Millisecond {
		t.Fatalf("InitBusy = %v, want 5ms", rep.InitBusy)
	}
	got, ok := k.ModuleReport("8139too")
	if !ok || got.InitLatency != rep.InitLatency {
		t.Fatal("ModuleReport mismatch")
	}
}

func TestLoadModuleDuplicate(t *testing.T) {
	k := newTestKernel()
	if _, err := k.LoadModule(&testModule{name: "m"}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.LoadModule(&testModule{name: "m"}); err == nil {
		t.Fatal("duplicate load succeeded")
	}
}

func TestLoadModuleInitFailure(t *testing.T) {
	k := newTestKernel()
	boom := errors.New("no device")
	if _, err := k.LoadModule(&testModule{name: "m", initErr: boom}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if len(k.LoadedModules()) != 0 {
		t.Fatal("failed module left loaded")
	}
}

func TestUnloadModule(t *testing.T) {
	k := newTestKernel()
	m := &testModule{name: "m"}
	if _, err := k.LoadModule(m); err != nil {
		t.Fatal(err)
	}
	if err := k.UnloadModule("m"); err != nil {
		t.Fatal(err)
	}
	if !m.exited {
		t.Fatal("Exit not called")
	}
	if err := k.UnloadModule("m"); err == nil {
		t.Fatal("double unload succeeded")
	}
}

func TestIRQDispatchContext(t *testing.T) {
	k := newTestKernel()
	var sawIRQ, sawAtomic bool
	err := k.RequestIRQ(9, "e1000", func(ctx *Context, irq int, dev any) {
		sawIRQ = ctx.InIRQ()
		sawAtomic = ctx.InAtomic()
		if dev.(string) != "adapter" {
			t.Errorf("dev cookie = %v", dev)
		}
		if irq != 9 {
			t.Errorf("irq = %d", irq)
		}
	}, "adapter")
	if err != nil {
		t.Fatal(err)
	}
	k.Bus().IRQ(9).Raise()
	if !sawIRQ || !sawAtomic {
		t.Fatalf("handler context: irq=%v atomic=%v, want true,true", sawIRQ, sawAtomic)
	}
}

func TestSharedIRQ(t *testing.T) {
	k := newTestKernel()
	var order []string
	_ = k.RequestIRQ(5, "a", func(ctx *Context, irq int, dev any) { order = append(order, "a") }, nil)
	_ = k.RequestIRQ(5, "b", func(ctx *Context, irq int, dev any) { order = append(order, "b") }, nil)
	k.Bus().IRQ(5).Raise()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("shared dispatch order = %v", order)
	}
}

func TestFreeIRQ(t *testing.T) {
	k := newTestKernel()
	count := 0
	_ = k.RequestIRQ(5, "a", func(ctx *Context, irq int, dev any) { count++ }, nil)
	if err := k.FreeIRQ(5, "a"); err != nil {
		t.Fatal(err)
	}
	k.Bus().IRQ(5).Raise()
	if count != 0 {
		t.Fatal("freed handler still ran")
	}
	if err := k.FreeIRQ(5, "a"); err == nil {
		t.Fatal("double free succeeded")
	}
}

func TestBlockingInIRQHandlerFaults(t *testing.T) {
	k := newTestKernel()
	k.SetStrictOops(false)
	_ = k.RequestIRQ(3, "bad", func(ctx *Context, irq int, dev any) {
		ctx.AssertMayBlock("xpc-to-user")
	}, nil)
	k.Bus().IRQ(3).Raise()
	if len(k.Oopses()) != 1 {
		t.Fatal("blocking from IRQ context did not fault")
	}
}

func TestWorkqueueDrain(t *testing.T) {
	k := newTestKernel()
	wq := k.NewWorkqueue("test")
	var ran []int
	wq.Queue(func(ctx *Context) {
		ran = append(ran, 1)
		wq.Queue(func(ctx *Context) { ran = append(ran, 2) })
	})
	if wq.Pending() != 1 {
		t.Fatalf("Pending = %d", wq.Pending())
	}
	n := wq.Drain()
	if n != 2 || len(ran) != 2 || ran[0] != 1 || ran[1] != 2 {
		t.Fatalf("Drain ran %d items, order %v", n, ran)
	}
	q, d := wq.Stats()
	if q != 2 || d != 2 {
		t.Fatalf("stats = %d,%d", q, d)
	}
}

func TestWorkItemMayBlock(t *testing.T) {
	k := newTestKernel()
	wq := k.NewWorkqueue("test")
	ok := false
	wq.Queue(func(ctx *Context) { ok = ctx.MayBlock() })
	wq.Drain()
	if !ok {
		t.Fatal("work item context may not block")
	}
}

func TestKernelTimerRunsAtomic(t *testing.T) {
	k := newTestKernel()
	var atomic bool
	tm := k.NewTimer("watchdog", func(ctx *Context) { atomic = ctx.InAtomic() })
	tm.Schedule(2 * time.Second)
	k.Clock().Advance(2 * time.Second)
	if !atomic {
		t.Fatal("timer callback context was not atomic (softirq)")
	}
	if tm.Fired() != 1 {
		t.Fatalf("Fired = %d", tm.Fired())
	}
}

func TestPeriodicTimer(t *testing.T) {
	k := newTestKernel()
	count := 0
	tm := k.NewTimer("watchdog", func(ctx *Context) { count++ })
	tm.SchedulePeriodic(2 * time.Second)
	k.Clock().Advance(7 * time.Second)
	if count != 3 {
		t.Fatalf("periodic timer fired %d times in 7s at 2s period, want 3", count)
	}
	tm.Stop()
	k.Clock().Advance(10 * time.Second)
	if count != 3 {
		t.Fatal("timer fired after Stop")
	}
}

func TestTimerDeferToWork(t *testing.T) {
	k := newTestKernel()
	var workRan bool
	var workMayBlock bool
	tm := k.NewTimer("watchdog", func(ctx *Context) {
		// High-priority context: defer user-level work, as Decaf E1000 does.
		k.DeferToWork(func(wctx *Context) {
			workRan = true
			workMayBlock = wctx.MayBlock()
		})
	})
	tm.Schedule(time.Second)
	k.Clock().Advance(time.Second)
	if workRan {
		t.Fatal("work ran before drain")
	}
	k.DefaultWorkqueue().Drain()
	if !workRan || !workMayBlock {
		t.Fatalf("deferred work: ran=%v mayBlock=%v", workRan, workMayBlock)
	}
}

func TestCPUAccounting(t *testing.T) {
	k := newTestKernel()
	ctx := k.NewContext("t")
	ctx.Charge(3 * time.Millisecond)
	ctx.UDelay(1000)
	p, s, h := k.Accounting().Totals()
	if p != 4*time.Millisecond || s != 0 || h != 0 {
		t.Fatalf("Totals = %v,%v,%v", p, s, h)
	}
	if k.Accounting().Busy() != 4*time.Millisecond {
		t.Fatalf("Busy = %v", k.Accounting().Busy())
	}
	k.Accounting().Reset()
	if k.Accounting().Busy() != 0 {
		t.Fatal("Reset did not clear accounting")
	}
}

func TestIRQChargesHardIRQBucket(t *testing.T) {
	k := newTestKernel()
	_ = k.RequestIRQ(4, "x", func(ctx *Context, irq int, dev any) {
		ctx.Charge(10 * time.Microsecond)
	}, nil)
	k.Bus().IRQ(4).Raise()
	_, _, h := k.Accounting().Totals()
	if h != 10*time.Microsecond+IRQCost {
		t.Fatalf("hardirq bucket = %v", h)
	}
}

func TestContextAccountingSeparatesSleep(t *testing.T) {
	k := newTestKernel()
	ctx := k.NewContext("t")
	ctx.Charge(time.Millisecond)
	ctx.MSleep(9)
	if ctx.Busy() != time.Millisecond {
		t.Fatalf("Busy = %v", ctx.Busy())
	}
	if ctx.Elapsed() != 10*time.Millisecond {
		t.Fatalf("Elapsed = %v", ctx.Elapsed())
	}
	ctx.ResetAccounting()
	if ctx.Busy() != 0 || ctx.Elapsed() != 0 {
		t.Fatal("ResetAccounting failed")
	}
}
