package kernel

import (
	"sync"
	"time"
)

// Cost model for lock acquisition, used by the combolock ablation benchmark
// (DESIGN.md D3). A spinlock acquisition is a handful of cycles; a semaphore
// acquisition involves the scheduler.
const (
	// SpinAcquireCost is the virtual CPU cost of an uncontended spinlock
	// acquisition.
	SpinAcquireCost = 20 * time.Nanosecond
	// SemaphoreAcquireCost is the virtual CPU cost of a semaphore
	// acquisition (schedule + wakeup).
	SemaphoreAcquireCost = 2 * time.Microsecond
)

// SpinLock is a kernel spinlock. While held, the owning context is atomic
// and must not block. Lock ordering and ownership are tracked per Context.
type SpinLock struct {
	name string
	mu   sync.Mutex
}

// NewSpinLock creates a named spinlock.
func NewSpinLock(name string) *SpinLock { return &SpinLock{name: name} }

// Name reports the lock's diagnostic name.
func (s *SpinLock) Name() string { return s.name }

// Lock acquires the spinlock, entering atomic context.
func (s *SpinLock) Lock(ctx *Context) {
	s.mu.Lock()
	ctx.pushSpin(s.name)
	ctx.Charge(SpinAcquireCost)
}

// Unlock releases the spinlock, leaving atomic context.
func (s *SpinLock) Unlock(ctx *Context) {
	ctx.popSpin(s.name)
	s.mu.Unlock()
}

// Mutex is a kernel mutex: a sleeping lock, illegal to take in atomic
// context. The paper's §3.1.3 modifies the kernel sound libraries to use
// mutexes instead of spinlocks precisely so more driver code can move to
// user level.
type Mutex struct {
	name string
	mu   sync.Mutex
}

// NewMutex creates a named kernel mutex.
func NewMutex(name string) *Mutex { return &Mutex{name: name} }

// Name reports the lock's diagnostic name.
func (m *Mutex) Name() string { return m.name }

// Lock acquires the mutex; it faults the kernel if called from atomic
// context.
func (m *Mutex) Lock(ctx *Context) {
	ctx.AssertMayBlock("mutex_lock(" + m.name + ")")
	m.mu.Lock()
	ctx.Charge(SemaphoreAcquireCost)
}

// Unlock releases the mutex.
func (m *Mutex) Unlock(ctx *Context) {
	m.mu.Unlock()
}

// Semaphore is a counting semaphore usable from process context.
type Semaphore struct {
	name string
	ch   chan struct{}
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(name string, count int) *Semaphore {
	s := &Semaphore{name: name, ch: make(chan struct{}, count)}
	for i := 0; i < count; i++ {
		s.ch <- struct{}{}
	}
	return s
}

// Down acquires one unit, blocking if none are available; it faults the
// kernel if called from atomic context.
func (s *Semaphore) Down(ctx *Context) {
	ctx.AssertMayBlock("down(" + s.name + ")")
	<-s.ch
	ctx.Charge(SemaphoreAcquireCost)
}

// TryDown acquires one unit without blocking, reporting success.
func (s *Semaphore) TryDown(ctx *Context) bool {
	select {
	case <-s.ch:
		ctx.Charge(SemaphoreAcquireCost)
		return true
	default:
		return false
	}
}

// Up releases one unit.
func (s *Semaphore) Up(ctx *Context) {
	select {
	case s.ch <- struct{}{}:
	default:
		panic("kernel: semaphore " + s.name + " Up past initial count")
	}
}

// Combolock is the Microdrivers synchronization primitive Decaf relies on
// (paper §3.1.3): "When acquired only in the kernel, a combolock is a
// spinlock. When acquired from user mode, a combolock is a semaphore, and
// subsequent kernel threads must wait for the semaphore."
//
// In spin mode the holder is atomic (may not block); once user-level code
// acquires the lock it permanently operates in semaphore mode for as long as
// user holders exist, and kernel acquirers block instead of spinning.
type Combolock struct {
	name string

	state sync.Mutex // protects mode bookkeeping
	mode  combolockMode
	users int // live user-mode acquisitions since last drain

	inner sync.Mutex // the actual mutual exclusion

	stats CombolockStats
}

type combolockMode int

const (
	comboSpin combolockMode = iota
	comboSemaphore
)

// CombolockStats counts acquisitions by path, for the D3 ablation bench.
type CombolockStats struct {
	SpinAcquires      uint64
	SemaphoreAcquires uint64
}

// NewCombolock creates a named combolock, initially in spinlock mode.
func NewCombolock(name string) *Combolock { return &Combolock{name: name} }

// Name reports the lock's diagnostic name.
func (c *Combolock) Name() string { return c.name }

// Lock acquires the combolock from kernel code. In spin mode the context
// becomes atomic for the critical section; in semaphore mode the acquisition
// may block (and therefore faults if the context is atomic).
func (c *Combolock) Lock(ctx *Context) {
	c.state.Lock()
	mode := c.mode
	c.state.Unlock()
	if mode == comboSpin {
		c.inner.Lock()
		// Re-check: a user acquirer may have switched modes while we waited.
		c.state.Lock()
		if c.mode == comboSpin {
			c.stats.SpinAcquires++
			c.state.Unlock()
			ctx.pushSpin(c.name)
			ctx.Charge(SpinAcquireCost)
			return
		}
		c.stats.SemaphoreAcquires++
		c.state.Unlock()
		ctx.Charge(SemaphoreAcquireCost)
		return
	}
	ctx.AssertMayBlock("combolock_lock(" + c.name + ") in semaphore mode")
	c.inner.Lock()
	c.state.Lock()
	c.stats.SemaphoreAcquires++
	c.state.Unlock()
	ctx.Charge(SemaphoreAcquireCost)
}

// Unlock releases a kernel-side acquisition.
func (c *Combolock) Unlock(ctx *Context) {
	c.state.Lock()
	spinHeld := false
	for _, n := range ctx.heldSpinlocks {
		if n == c.name {
			spinHeld = true
			break
		}
	}
	c.state.Unlock()
	if spinHeld {
		ctx.popSpin(c.name)
	}
	c.inner.Unlock()
}

// LockUser acquires the combolock from user-mode code (the decaf driver or
// driver library). This switches the lock to semaphore mode so kernel
// threads wait rather than spin, and guarantees the user holder sees the
// most recent version of protected objects (the XPC layer synchronizes
// objects at acquisition).
func (c *Combolock) LockUser(ctx *Context) {
	ctx.AssertMayBlock("combolock_lock_user(" + c.name + ")")
	c.state.Lock()
	c.mode = comboSemaphore
	c.users++
	c.state.Unlock()
	c.inner.Lock()
	c.state.Lock()
	c.stats.SemaphoreAcquires++
	c.state.Unlock()
	ctx.Charge(SemaphoreAcquireCost)
}

// UnlockUser releases a user-mode acquisition; when the last user holder
// drains, the lock reverts to spinlock mode.
func (c *Combolock) UnlockUser(ctx *Context) {
	c.state.Lock()
	if c.users == 0 {
		c.state.Unlock()
		panic("kernel: UnlockUser of combolock " + c.name + " with no user holders")
	}
	c.users--
	if c.users == 0 {
		c.mode = comboSpin
	}
	c.state.Unlock()
	c.inner.Unlock()
}

// Mode reports "spin" or "semaphore" for tests and diagnostics.
func (c *Combolock) Mode() string {
	c.state.Lock()
	defer c.state.Unlock()
	if c.mode == comboSpin {
		return "spin"
	}
	return "semaphore"
}

// Stats returns acquisition counters.
func (c *Combolock) Stats() CombolockStats {
	c.state.Lock()
	defer c.state.Unlock()
	return c.stats
}
