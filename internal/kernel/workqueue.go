package kernel

import (
	"sync"
	"time"
)

// WorkFunc is a deferred work item body. It runs in process context and may
// block — this is exactly why Decaf converts driver timers into work items:
// "we convert timers to enqueue a work item, which executes on a separate
// thread and allows blocking operations. Thus, the watchdog timer can
// execute in the decaf driver." (paper §3.1.3).
type WorkFunc func(ctx *Context)

// WorkScheduleCost is the virtual CPU cost of queueing plus dispatching one
// work item (enqueue, wakeup, dequeue).
const WorkScheduleCost = 3 * time.Microsecond

// Workqueue is a kernel work queue. Items are drained explicitly by the
// simulation loop (Drain), keeping experiments deterministic; each item runs
// under the queue's own process context.
type Workqueue struct {
	kernel *Kernel
	name   string

	mu      sync.Mutex
	items   []WorkFunc
	ctx     *Context
	queued  uint64
	drained uint64
}

// NewWorkqueue creates a named work queue with its own worker context.
func (k *Kernel) NewWorkqueue(name string) *Workqueue {
	return &Workqueue{kernel: k, name: name, ctx: k.NewContext("kworker/" + name)}
}

// Name reports the queue name.
func (w *Workqueue) Name() string { return w.name }

// Queue appends a work item. Safe from any context, including hard IRQ.
func (w *Workqueue) Queue(fn WorkFunc) {
	if fn == nil {
		panic("kernel: Queue(nil)")
	}
	w.mu.Lock()
	w.items = append(w.items, fn)
	w.queued++
	w.mu.Unlock()
}

// Pending reports how many items await draining.
func (w *Workqueue) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.items)
}

// Drain runs queued items (including ones queued by the items themselves)
// until the queue is empty, and reports how many ran.
func (w *Workqueue) Drain() int {
	ran := 0
	for {
		w.mu.Lock()
		if len(w.items) == 0 {
			w.mu.Unlock()
			return ran
		}
		fn := w.items[0]
		w.items = w.items[1:]
		w.drained++
		ctx := w.ctx
		w.mu.Unlock()
		ctx.Charge(WorkScheduleCost)
		fn(ctx)
		ran++
	}
}

// Stats reports items queued and drained over the queue's lifetime.
func (w *Workqueue) Stats() (queued, drained uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.queued, w.drained
}

// WorkerContext exposes the queue's process context (for accounting
// assertions in tests).
func (w *Workqueue) WorkerContext() *Context { return w.ctx }
