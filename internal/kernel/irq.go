package kernel

import (
	"fmt"
	"sync"
	"time"

	"decafdrivers/internal/hw"
)

// IRQHandlerFunc is a driver interrupt handler. It runs in hard-IRQ context:
// the passed Context reports InIRQ() and may not block. dev is the opaque
// cookie registered with RequestIRQ (the driver's adapter structure).
type IRQHandlerFunc func(ctx *Context, irq int, dev any)

// IRQCost is the fixed virtual CPU overhead of entering and exiting an
// interrupt handler (vector dispatch, register save/restore, EOI).
const IRQCost = 2 * time.Microsecond

type irqAction struct {
	name    string
	handler IRQHandlerFunc
	dev     any
}

type irqState struct {
	line    *hw.IRQLine
	actions []*irqAction
	ctx     *Context
}

// irqTable maps interrupt numbers to their registered actions.
type irqTable struct {
	mu    sync.Mutex
	byNum map[int]*irqState
}

func (k *Kernel) irqs() *irqTable { return k.irqTable }

// RequestIRQ installs handler on the given interrupt number, the analogue of
// request_irq. The handler runs synchronously whenever the underlying
// hardware line asserts, in a dedicated hard-IRQ context. Multiple handlers
// may share a line (IRQF_SHARED); each is invoked in registration order.
func (k *Kernel) RequestIRQ(num int, name string, handler IRQHandlerFunc, dev any) error {
	if handler == nil {
		return fmt.Errorf("kernel: RequestIRQ(%d) with nil handler", num)
	}
	t := k.irqs()
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.byNum[num]
	if !ok {
		line := k.bus.IRQ(num)
		st = &irqState{line: line, ctx: k.NewContext(fmt.Sprintf("irq/%d", num))}
		t.byNum[num] = st
		line.SetHandler(func() { k.dispatchIRQ(num) })
	}
	st.actions = append(st.actions, &irqAction{name: name, handler: handler, dev: dev})
	return nil
}

// FreeIRQ removes the handler registered under name on the given interrupt
// number, the analogue of free_irq.
func (k *Kernel) FreeIRQ(num int, name string) error {
	t := k.irqs()
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.byNum[num]
	if !ok {
		return fmt.Errorf("kernel: FreeIRQ(%d): no handlers", num)
	}
	for i, a := range st.actions {
		if a.name == name {
			st.actions = append(st.actions[:i], st.actions[i+1:]...)
			if len(st.actions) == 0 {
				st.line.SetHandler(nil)
				delete(t.byNum, num)
			}
			return nil
		}
	}
	return fmt.Errorf("kernel: FreeIRQ(%d): handler %q not registered", num, name)
}

func (k *Kernel) dispatchIRQ(num int) {
	t := k.irqs()
	t.mu.Lock()
	st, ok := t.byNum[num]
	if !ok {
		t.mu.Unlock()
		return
	}
	actions := make([]*irqAction, len(st.actions))
	copy(actions, st.actions)
	ctx := st.ctx
	t.mu.Unlock()

	ctx.enterIRQ()
	ctx.Charge(IRQCost)
	defer ctx.exitIRQ()
	for _, a := range actions {
		a.handler(ctx, num, a.dev)
	}
}

// DisableIRQ masks the interrupt line, the analogue of disable_irq. The
// Decaf nuclear runtime calls this while the decaf driver runs so the driver
// cannot interrupt itself (paper §3.1.3).
func (k *Kernel) DisableIRQ(num int) { k.bus.IRQ(num).Disable() }

// EnableIRQ unmasks the interrupt line, delivering any latched assert.
func (k *Kernel) EnableIRQ(num int) { k.bus.IRQ(num).Enable() }
