package decaf

import (
	"decafdrivers/internal/hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/xpc"
)

// Helpers is the decaf runtime's escape hatch for "functionality necessary
// for communicating with the kernel or the device that is not possible to
// express" in a managed language (paper §5.3): programmed I/O, sleeps, and
// sizeof-style queries. The paper observes that none of these are specific
// to any one driver and places them in the shared decaf runtime; the same
// holds here. Each helper is a direct cross-language library call, not a
// kernel crossing.
type Helpers struct {
	rt  *xpc.Runtime
	bus *hw.Bus
}

// NewHelpers creates the helper set for one decaf driver.
func NewHelpers(rt *xpc.Runtime, bus *hw.Bus) *Helpers {
	return &Helpers{rt: rt, bus: bus}
}

// Msleep is the Java_msleep wrapper from the paper's Figure 5.
func (h *Helpers) Msleep(ctx *kernel.Context, ms int) {
	h.rt.LibraryCall(ctx, "msleep", func() { ctx.MSleep(ms) })
}

// Outb writes one byte to an I/O port via the driver library.
func (h *Helpers) Outb(ctx *kernel.Context, port uint16, v uint8) {
	h.rt.LibraryCall(ctx, "outb", func() { h.bus.Outb(port, v) })
}

// Outw writes a 16-bit word to an I/O port via the driver library.
func (h *Helpers) Outw(ctx *kernel.Context, port uint16, v uint16) {
	h.rt.LibraryCall(ctx, "outw", func() { h.bus.Outw(port, v) })
}

// Outl writes a 32-bit longword to an I/O port via the driver library.
func (h *Helpers) Outl(ctx *kernel.Context, port uint16, v uint32) {
	h.rt.LibraryCall(ctx, "outl", func() { h.bus.Outl(port, v) })
}

// Inb reads one byte from an I/O port via the driver library.
func (h *Helpers) Inb(ctx *kernel.Context, port uint16) uint8 {
	var v uint8
	h.rt.LibraryCall(ctx, "inb", func() { v = h.bus.Inb(port) })
	return v
}

// Inw reads a 16-bit word from an I/O port via the driver library.
func (h *Helpers) Inw(ctx *kernel.Context, port uint16) uint16 {
	var v uint16
	h.rt.LibraryCall(ctx, "inw", func() { v = h.bus.Inw(port) })
	return v
}

// Inl reads a 32-bit longword from an I/O port via the driver library.
func (h *Helpers) Inl(ctx *kernel.Context, port uint16) uint32 {
	var v uint32
	h.rt.LibraryCall(ctx, "inl", func() { v = h.bus.Inl(port) })
	return v
}

// ReadMMIO performs a memory-mapped register read via the driver library.
func (h *Helpers) ReadMMIO(ctx *kernel.Context, dev *hw.PCIDevice, bar int, off uint32, size int) uint64 {
	var v uint64
	h.rt.LibraryCall(ctx, "readl", func() { v = dev.MMIORead(bar, off, size) })
	return v
}

// WriteMMIO performs a memory-mapped register write via the driver library.
func (h *Helpers) WriteMMIO(ctx *kernel.Context, dev *hw.PCIDevice, bar int, off uint32, size int, v uint64) {
	h.rt.LibraryCall(ctx, "writel", func() { dev.MMIOWrite(bar, off, size, v) })
}
