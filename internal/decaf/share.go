package decaf

import (
	"decafdrivers/internal/objtrack"
	"decafdrivers/internal/xpc"
)

// ShareWithCollector registers a kernel/decaf object pair with the XPC
// runtime *and* attaches a release action to the decaf object: when the
// decaf driver drops its last reference (or releases explicitly), the
// tracker associations disappear and the kernel-side free runs. This is the
// §5.1 proposal implemented: "a custom constructor that also allocates
// kernel memory at the same time and creates an association in the object
// tracker ... a custom finalizer to free the associated kernel memory when
// the garbage collector frees the object", preventing resource leaks on
// error paths.
func ShareWithCollector(rt *xpc.Runtime, col *Collector, kernelObj, decafObj any, freeKernel func()) (objtrack.CPtr, Handle, error) {
	ptr, err := rt.Share(kernelObj, decafObj)
	if err != nil {
		return 0, Handle{}, err
	}
	h := col.Register(decafObj, func() {
		rt.Unshare(kernelObj)
		if freeKernel != nil {
			freeKernel()
		}
	})
	return ptr, h, nil
}
