package decaf

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/ktime"
	"decafdrivers/internal/xpc"
)

func TestThrowCaughtByTry(t *testing.T) {
	e := Try(func() {
		Throw("E1000HWException", "phy read failed at reg %#x", 0x2F5B)
	})
	if e == nil {
		t.Fatal("Try returned nil for thrown exception")
	}
	if e.Class != "E1000HWException" {
		t.Fatalf("Class = %q", e.Class)
	}
	if !strings.Contains(e.Msg, "0x2f5b") {
		t.Fatalf("Msg = %q", e.Msg)
	}
}

func TestTryNilOnSuccess(t *testing.T) {
	if e := Try(func() {}); e != nil {
		t.Fatalf("Try = %v on success", e)
	}
}

func TestNonExceptionPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("plain panic was swallowed by Try")
		}
	}()
	_ = Try(func() { panic("index out of range") })
}

func TestThrowErrnoAndCheck(t *testing.T) {
	e := Try(func() { _ = Check("HWErr", -5, "read_phy_reg") })
	if e == nil || e.Errno != -5 {
		t.Fatalf("e = %+v", e)
	}
	if got := Check("HWErr", 3, "ok"); got != 3 {
		t.Fatalf("Check passed value through as %d", got)
	}
	if e := Try(func() { _ = Check("HWErr", 0, "ok") }); e != nil {
		t.Fatal("Check threw on success code")
	}
}

func TestExceptionErrorString(t *testing.T) {
	e := &Exception{Class: "X", Msg: "m", Errno: -22}
	if !strings.Contains(e.Error(), "-22") || !strings.Contains(e.Error(), "X") {
		t.Fatalf("Error() = %q", e.Error())
	}
}

func TestExceptionIsMatchesClass(t *testing.T) {
	e := Try(func() { Throw("E1000HWException", "x") })
	if !errors.Is(e, &Exception{Class: "E1000HWException"}) {
		t.Fatal("errors.Is by class failed")
	}
	if errors.Is(e, &Exception{Class: "Other"}) {
		t.Fatal("errors.Is matched wrong class")
	}
}

func TestThrowCauseUnwraps(t *testing.T) {
	base := errors.New("eeprom checksum")
	e := Try(func() { ThrowCause("HWErr", base, "init failed") })
	if !errors.Is(e, base) {
		t.Fatal("cause not unwrapped")
	}
}

// TestNestedHandlersFigure4 reproduces the cleanup-ordering semantics of the
// paper's Figure 4: each nested handler releases exactly the resources
// acquired before the failure, in reverse order, then rethrows.
func TestNestedHandlersFigure4(t *testing.T) {
	run := func(failAt string) (cleanups []string, e *Exception) {
		e = Try(func() {
			// allocate transmit descriptors
			if failAt == "tx" {
				Throw("E1000HWException", "tx setup failed")
			}
			TryCatch(func() {
				// allocate receive descriptors
				if failAt == "rx" {
					Throw("E1000HWException", "rx setup failed")
				}
				TryCatch(func() {
					if failAt == "irq" {
						Throw("E1000HWException", "request_irq failed")
					}
				}, func(ex *Exception) {
					cleanups = append(cleanups, "free_all_rx_resources")
					Rethrow(ex)
				})
			}, func(ex *Exception) {
				cleanups = append(cleanups, "free_all_tx_resources")
				Rethrow(ex)
			})
		})
		if e != nil {
			cleanups = append(cleanups, "reset")
		}
		return cleanups, e
	}

	cl, e := run("irq")
	if e == nil || len(cl) != 3 || cl[0] != "free_all_rx_resources" || cl[1] != "free_all_tx_resources" || cl[2] != "reset" {
		t.Fatalf("irq failure cleanups = %v", cl)
	}
	cl, e = run("rx")
	if e == nil || len(cl) != 2 || cl[0] != "free_all_tx_resources" {
		t.Fatalf("rx failure cleanups = %v", cl)
	}
	cl, e = run("tx")
	if e == nil || len(cl) != 1 || cl[0] != "reset" {
		t.Fatalf("tx failure cleanups = %v", cl)
	}
	cl, e = run("none")
	if e != nil || len(cl) != 0 {
		t.Fatalf("success path ran cleanups %v (e=%v)", cl, e)
	}
}

func TestRethrowNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rethrow(nil) did not panic")
		}
	}()
	Rethrow(nil)
}

func TestToError(t *testing.T) {
	if ToError(nil) != nil {
		t.Fatal("ToError(nil) != nil")
	}
	e := &Exception{Class: "X", Msg: "m"}
	if err := ToError(e); err == nil || !errors.Is(err, e) {
		t.Fatal("ToError lost the exception")
	}
}

func TestAsException(t *testing.T) {
	e := &Exception{Class: "X"}
	got, ok := AsException(ToError(e))
	if !ok || got != e {
		t.Fatal("AsException failed")
	}
	if _, ok := AsException(errors.New("plain")); ok {
		t.Fatal("AsException matched plain error")
	}
}

// --- parameters ---

func TestRangeParam(t *testing.T) {
	p := &RangeParam{BaseParam: BaseParam{ParamName: "TxDescriptors", Default: 256}, Min: 80, Max: 4096}
	if got := p.Validate(0, false); got != 256 {
		t.Fatalf("default = %d", got)
	}
	if got := p.Validate(1024, true); got != 1024 {
		t.Fatalf("in-range = %d", got)
	}
	e := Try(func() { p.Validate(8, true) })
	if e == nil || e.Class != ParamException {
		t.Fatalf("out-of-range: %v", e)
	}
}

func TestSetParam(t *testing.T) {
	p := NewSetParam("Duplex", 0, 0, 1, 2)
	if got := p.Validate(2, true); got != 2 {
		t.Fatalf("member = %d", got)
	}
	e := Try(func() { p.Validate(3, true) })
	if e == nil {
		t.Fatal("non-member accepted")
	}
}

func TestValidateAll(t *testing.T) {
	params := []Param{
		&RangeParam{BaseParam: BaseParam{ParamName: "TxDescriptors", Default: 256}, Min: 80, Max: 4096},
		NewSetParam("Duplex", 0, 0, 1, 2),
		&BaseParam{ParamName: "Debug", Default: 3},
	}
	got := ValidateAll(params, map[string]int{"TxDescriptors": 512})
	if got["TxDescriptors"] != 512 || got["Duplex"] != 0 || got["Debug"] != 3 {
		t.Fatalf("resolved = %v", got)
	}
	s := ParamString(got, params)
	if !strings.Contains(s, "TxDescriptors=512") {
		t.Fatalf("ParamString = %q", s)
	}
}

// --- helpers ---

type ports struct{ last uint32 }

func (p *ports) PortRead(off uint16, size int) uint32     { return p.last + uint32(off) }
func (p *ports) PortWrite(off uint16, size int, v uint32) { p.last = v }

func TestHelpersPortIO(t *testing.T) {
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 1<<16)
	k := kernel.New(clock, bus)
	rt := xpc.NewRuntime(k, "x", xpc.ModeDecaf, nil)
	h := NewHelpers(rt, bus)
	bus.RegisterPorts(0x300, 16, &ports{})
	ctx := rt.DecafContext()

	h.Outl(ctx, 0x300, 100)
	if got := h.Inl(ctx, 0x304); got != 104 {
		t.Fatalf("Inl = %d", got)
	}
	h.Outb(ctx, 0x300, 1)
	h.Outw(ctx, 0x300, 2)
	_ = h.Inb(ctx, 0x300)
	_ = h.Inw(ctx, 0x300)
	if rt.Counters().LibraryCalls != 6 {
		t.Fatalf("LibraryCalls = %d, want 6", rt.Counters().LibraryCalls)
	}
	if rt.Counters().Trips() != 0 {
		t.Fatal("port I/O crossed the kernel boundary")
	}
}

func TestHelpersMsleep(t *testing.T) {
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 1<<16)
	k := kernel.New(clock, bus)
	rt := xpc.NewRuntime(k, "x", xpc.ModeDecaf, nil)
	h := NewHelpers(rt, bus)
	ctx := rt.DecafContext()
	before := ctx.Elapsed()
	h.Msleep(ctx, 20)
	if ctx.Elapsed()-before < 20*time.Millisecond {
		t.Fatalf("Msleep elapsed %v", ctx.Elapsed()-before)
	}
}

func TestHelpersMMIO(t *testing.T) {
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 1<<16)
	k := kernel.New(clock, bus)
	rt := xpc.NewRuntime(k, "x", xpc.ModeDecaf, nil)
	h := NewHelpers(rt, bus)
	dev := hw.NewPCIDevice("x", 1, 2, 0)
	dev.SetBAR(0, &hw.BAR{Size: 0x100, Handler: &mmio{}})
	ctx := rt.DecafContext()
	h.WriteMMIO(ctx, dev, 0, 0x10, 4, 7)
	if got := h.ReadMMIO(ctx, dev, 0, 0x10, 4); got != 7 {
		t.Fatalf("ReadMMIO = %d", got)
	}
}

type mmio struct{ regs [64]uint64 }

func (m *mmio) MMIORead(off uint32, size int) uint64     { return m.regs[off/4] }
func (m *mmio) MMIOWrite(off uint32, size int, v uint64) { m.regs[off/4] = v }

// --- collector ---

func TestCollectorExplicitRelease(t *testing.T) {
	c := NewCollector()
	released := 0
	obj := &struct{ X int }{}
	h := c.Register(obj, func() { released++ })
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d", c.Pending())
	}
	c.Release(h)
	c.Release(h) // idempotent
	if released != 1 {
		t.Fatalf("release ran %d times", released)
	}
	if c.Pending() != 0 || c.Released() != 1 {
		t.Fatalf("Pending=%d Released=%d", c.Pending(), c.Released())
	}
	runtime.KeepAlive(obj)
}

func TestCollectorFinalizerRelease(t *testing.T) {
	c := NewCollector()
	ch := make(chan struct{})
	func() {
		obj := &struct{ X [64]byte }{}
		c.Register(obj, func() { close(ch) })
	}()
	deadline := time.After(2 * time.Second)
	for {
		runtime.GC()
		select {
		case <-ch:
			if c.Released() != 1 {
				t.Fatalf("Released = %d", c.Released())
			}
			return
		case <-deadline:
			t.Skip("finalizer did not run within deadline (GC scheduling); explicit release covered elsewhere")
		case <-time.After(10 * time.Millisecond):
		}
	}
}
