package decaf

import "fmt"

// This file reproduces the module-parameter validation classes from the
// E1000 case study (§5.1): "A base class provides basic parameter checking,
// and the two derived classes provide additional functionality. ... The
// resulting code is shorter than the original C code and more maintainable,
// because the programmer is forced by the type system to provide ranges and
// sets when necessary." The set-membership test uses a hash table, the Java
// collections usage the paper highlights.

// ParamException is the class thrown by failed parameter validation.
const ParamException = "InvalidParameterException"

// Param validates one module parameter. Implementations are the analogue of
// the case study's class hierarchy.
type Param interface {
	// Name is the parameter's name as given on the module command line.
	Name() string
	// Validate returns the value to use, throwing ParamException when the
	// supplied value is invalid. Absent values (ok == false) yield the
	// default.
	Validate(value int, ok bool) int
}

// BaseParam provides basic parameter checking: presence handling and a
// default, the behavior of the case study's base class.
type BaseParam struct {
	// ParamName is the module parameter's name.
	ParamName string
	// Default is used when the parameter is absent.
	Default int
}

// Name implements Param.
func (p *BaseParam) Name() string { return p.ParamName }

// Validate implements Param: any present value is accepted.
func (p *BaseParam) Validate(value int, ok bool) int {
	if !ok {
		return p.Default
	}
	return value
}

// RangeParam is the derived class performing range tests.
type RangeParam struct {
	BaseParam
	// Min and Max bound the accepted values, inclusive.
	Min, Max int
}

// Validate implements Param, throwing when the value is out of range.
func (p *RangeParam) Validate(value int, ok bool) int {
	if !ok {
		return p.Default
	}
	if value < p.Min || value > p.Max {
		Throw(ParamException, "%s: value %d out of range [%d, %d]", p.ParamName, value, p.Min, p.Max)
	}
	return value
}

// SetParam is the derived class performing set-membership tests, using a
// hash table as the case study does with the Java collections library.
type SetParam struct {
	BaseParam
	allowed map[int]bool
}

// NewSetParam creates a set-membership parameter.
func NewSetParam(name string, def int, allowed ...int) *SetParam {
	m := make(map[int]bool, len(allowed))
	for _, v := range allowed {
		m[v] = true
	}
	return &SetParam{BaseParam: BaseParam{ParamName: name, Default: def}, allowed: m}
}

// Validate implements Param, throwing when the value is not in the set.
func (p *SetParam) Validate(value int, ok bool) int {
	if !ok {
		return p.Default
	}
	if !p.allowed[value] {
		Throw(ParamException, "%s: value %d not in allowed set", p.ParamName, value)
	}
	return value
}

// ValidateAll checks each parameter against the supplied values (a module
// load's option map) and returns the resolved settings. "The appropriate
// class checks each module parameter automatically."
func ValidateAll(params []Param, values map[string]int) map[string]int {
	out := make(map[string]int, len(params))
	for _, p := range params {
		v, ok := values[p.Name()]
		out[p.Name()] = p.Validate(v, ok)
	}
	return out
}

// String renders resolved parameters for diagnostics.
func ParamString(resolved map[string]int, order []Param) string {
	s := ""
	for i, p := range order {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", p.Name(), resolved[p.Name()])
	}
	return s
}
