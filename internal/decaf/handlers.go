package decaf

import "decafdrivers/internal/decaf/registry"

// This file re-exports the handler-table API (internal/decaf/registry) under
// the decaf package, so driver authors write their whole decaf side against
// one import. The registry itself stays a stdlib-only leaf package because
// internal/xpc must import it too; the aliases below are the driver-facing
// names.
//
// # Writing a decaf call body
//
// A decaf call body is a named, package-level function registered from
// init(). It must not close over the driver instance: under the proc
// transport the body executes in the worker process, which is a re-exec of
// the same binary — the init()-built table and cell indices match on both
// sides, but a *Driver pointer would not. Everything the body needs arrives
// through its HandlerCtx:
//
//   - ctx.Data — the call's payload bytes (marshaled copy, or the worker's
//     view of a payload-ring slot).
//   - ctx.State — the shared state cells, shm-backed under the proc
//     transport so worker-side writes are visible to the kernel side.
//   - ctx.Downcall — a real boundary crossing back into the kernel, for
//     bodies registered with Down: true.
//
// A worked example, following the e1000 conversion (its watchdog reads link
// status from the device and tells the kernel when the carrier changes):
//
//	var (
//		cellRuns   = decaf.RegisterCell("e1000.watchdog_runs")
//		cellLinkUp = decaf.RegisterCell("e1000.link_up")
//	)
//
//	func init() {
//		decaf.RegisterHandler("e1000_watchdog", decaf.Handler{
//			Cost: 500 * time.Nanosecond, // virtual CPU charged kernel-side
//			Down: true,                  // body makes nested downcalls
//			Fn: func(c *decaf.HandlerCtx) error {
//				c.State.Add(cellRuns, 1)
//				status, err := c.Downcall("e1000_read_status", 0)
//				if err != nil {
//					return err
//				}
//				up := uint64(0)
//				if uint32(status)&e1000hw.StatusLU != 0 {
//					up = 1
//				}
//				if c.State.Load(cellLinkUp) != up {
//					c.State.Store(cellLinkUp, up)
//					_, err = c.Downcall("netif_carrier_change", up)
//				}
//				return err
//			},
//		})
//	}
//
// The downcall targets are per-driver-instance closures, registered on the
// Runtime (not the process-global table) because they run kernel-side in the
// parent and may touch the device and kernel state freely:
//
//	func (d *Driver) registerDowncalls() { // called from New()
//		d.rt.RegisterDowncall("e1000_read_status", func(kctx *kernel.Context, _ uint64) (uint64, error) {
//			return uint64(d.dev.PCI.MMIORead(0, e1000hw.RegSTATUS, 4)), nil
//		})
//		d.rt.RegisterDowncall("netif_carrier_change", func(kctx *kernel.Context, up uint64) (uint64, error) {
//			d.Adapter.LinkUp = up != 0 // kernel-side mirror of the cell
//			// ... netif_carrier_on/off ...
//			return 0, nil
//		})
//	}
//
// The kernel side invokes the body by name — rt.UpcallHandler(ctx,
// "e1000_watchdog") for control-path calls, b.UpcallHandlerPayload(
// "e1000_xmit_frame", payload) for batched data-path calls — and reads the
// results back through the same cells: d.rt.SharedState().Load(cellRuns).
// All four transports dispatch the identical Fn; only where it executes
// differs.
type (
	// Handler is one registered decaf call body; see registry.Handler.
	Handler = registry.Handler
	// HandlerCtx is the body's window on the call: payload bytes, shared
	// state cells, and the downcall hook. Alias of registry.Ctx.
	HandlerCtx = registry.Ctx
	// Cell indexes one 64-bit word of shared driver state; see
	// registry.Cell.
	Cell = registry.Cell
	// SharedState is a driver instance's state-cell area; see
	// registry.State.
	SharedState = registry.State
)

// RegisterHandler installs a decaf call body under a stable name. Call it
// from init() so parent and re-exec'd worker build identical tables.
func RegisterHandler(name string, h Handler) { registry.Register(name, h) }

// RegisterCell allocates (or finds) the named shared-state cell. Call it
// from package-level var initializers so the allocation order — and thus
// every cell's index — is deterministic across re-execs.
func RegisterCell(name string) Cell { return registry.RegisterCell(name) }

// HandlerNames lists the registered call names, sorted.
func HandlerNames() []string { return registry.Names() }
