package decaf

import (
	"testing"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/ktime"
	"decafdrivers/internal/xpc"
)

type sharedThing struct {
	Value int32
}

func TestShareWithCollectorExplicitRelease(t *testing.T) {
	clock := ktime.NewClock()
	k := kernel.New(clock, hw.NewBus(clock, 1<<16))
	rt := xpc.NewRuntime(k, "t", xpc.ModeDecaf, nil)
	col := NewCollector()

	kobj, dobj := &sharedThing{Value: 1}, &sharedThing{}
	freed := false
	ptr, h, err := ShareWithCollector(rt, col, kobj, dobj, func() { freed = true })
	if err != nil {
		t.Fatal(err)
	}
	if ptr == 0 || rt.SharedCount() != 1 {
		t.Fatal("share failed")
	}

	// The pair works like any shared object until released.
	ctx := k.NewContext("t")
	kobj.Value = 42
	if err := rt.SyncToUser(ctx, kobj); err != nil {
		t.Fatal(err)
	}
	if dobj.Value != 42 {
		t.Fatal("sync failed")
	}

	col.Release(h)
	if !freed {
		t.Fatal("kernel free did not run")
	}
	if rt.SharedCount() != 0 {
		t.Fatal("tracker associations survived release")
	}
	// Release is idempotent; double release must not double-free.
	freed = false
	col.Release(h)
	if freed {
		t.Fatal("double release ran the free again")
	}
}

// TestShareWithCollectorErrorPath demonstrates the §5.1 claim: on an error
// path that abandons the decaf object, the release action still reclaims
// the kernel resources (here triggered explicitly; the finalizer path is
// exercised in TestCollectorFinalizerRelease).
func TestShareWithCollectorErrorPath(t *testing.T) {
	clock := ktime.NewClock()
	k := kernel.New(clock, hw.NewBus(clock, 1<<16))
	rt := xpc.NewRuntime(k, "t", xpc.ModeDecaf, nil)
	col := NewCollector()

	dma := hw.NewDMAMemory(1 << 12)
	buf, err := dma.Alloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, h, err := ShareWithCollector(rt, col, &sharedThing{}, &sharedThing{},
		func() { _ = dma.Free(buf) })
	if err != nil {
		t.Fatal(err)
	}
	// A failure occurs: the decaf driver abandons the object.
	exc := Try(func() { Throw("HWErr", "probe failed after allocation") })
	if exc == nil {
		t.Fatal("setup")
	}
	col.Release(h) // what the finalizer would do at the next GC
	if dma.InUse() != 0 {
		t.Fatal("error path leaked the kernel allocation")
	}
}
