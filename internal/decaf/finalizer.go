package decaf

import (
	"runtime"
	"sync"
)

// This file implements the automatic collection of shared objects that the
// paper leaves as future work: "Implementing the object tracker with weak
// references and finalizers would allow unreferenced objects to be removed
// from the object tracker automatically" (§3.1.2), and "we can write a
// custom finalizer to free the associated kernel memory when the Java
// garbage collector frees the object. This approach can simplify
// exception-handling code and prevent resource leaks on error paths, a
// common driver problem" (§5.1).

// Collector arranges for a release action (tracker removal plus kernel-side
// kfree) to run when a decaf object becomes unreachable, and also supports
// explicit release for drivers that free deterministically. Each action runs
// at most once.
type Collector struct {
	mu       sync.Mutex
	pending  map[*releaseHandle]struct{}
	released int
}

type releaseHandle struct {
	c       *Collector
	mu      sync.Mutex
	release func()
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{pending: make(map[*releaseHandle]struct{})}
}

// Handle identifies a registered release action.
type Handle struct{ h *releaseHandle }

// Register attaches release to obj: it runs when obj is garbage collected,
// or earlier if Release is called explicitly. obj must be a pointer.
func (c *Collector) Register(obj any, release func()) Handle {
	h := &releaseHandle{c: c, release: release}
	c.mu.Lock()
	c.pending[h] = struct{}{}
	c.mu.Unlock()
	runtime.SetFinalizer(obj, func(any) { h.run() })
	return Handle{h: h}
}

func (h *releaseHandle) run() {
	h.mu.Lock()
	rel := h.release
	h.release = nil
	h.mu.Unlock()
	if rel == nil {
		return
	}
	rel()
	h.c.mu.Lock()
	delete(h.c.pending, h)
	h.c.released++
	h.c.mu.Unlock()
}

// Release runs the handle's action now (idempotent).
func (c *Collector) Release(h Handle) {
	if h.h != nil {
		h.h.run()
	}
}

// Pending reports how many registered objects have not yet been released.
func (c *Collector) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Released reports how many release actions have run.
func (c *Collector) Released() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.released
}
