// Package registry is the decaf handler table: the process-global,
// re-exec-able registry that lets decaf call bodies execute in the worker
// process. A driver registers its decaf-side call bodies as named Handler
// values from init(), keyed by the same stable call names the XPC layer
// submits. Because the proc transport's worker is a re-exec of the current
// binary, the same init() functions run in the worker image, so the handler
// table is identical on both sides of the boundary by construction — no
// serialized code, no plugin loading, just deterministic init order.
//
// Handlers are package-level pure functions over a Ctx: they see the call's
// payload bytes, the driver's shared state cells (shm-backed under the proc
// transport, so a worker-side write is visible to the kernel side through
// its own mapping), and a Downcall hook that crosses back into the kernel
// for the nested downcalls decaf code makes (§3.1 of the paper). They never
// touch kernel-side packages: under process separation those are a
// different address space, and the in-process transports dispatch the same
// Fn so the cost model stays comparable across transports.
//
// The package is deliberately leaf-level (stdlib only): both internal/xpc
// (which dispatches handlers) and internal/decaf (which re-exports the API
// to driver authors) import it.
package registry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Ctx is what a handler sees: the registered call name, the call's payload
// bytes (a marshaled copy or the worker's view of a payload-ring slot — do
// not retain past the call), the shared state cells, and the downcall hook
// back into the kernel.
type Ctx struct {
	// Name is the call name the handler was dispatched under.
	Name string
	// Data is the call's payload, when it carried one: the marshaled bytes
	// on the copy path, or the slot's bytes viewed through this process's
	// mapping on the ring path. Valid only for the duration of the call.
	Data []byte
	// State is the shared state area the handler reads and writes driver
	// state through. Under the proc transport it is the shm mapping both
	// processes share; under the in-process transports it is heap memory.
	State *State

	// down is the boundary crossing installed by the dispatcher: in the
	// worker it frames a FrameDown onto the socketpair; in-process it is a
	// real Runtime.Downcall.
	down func(name string, arg uint64) (uint64, error)
}

// Downcall crosses back into the kernel: the named downcall runs
// kernel-side with arg and returns its scalar result. Only handlers
// registered with Down: true may call it — the transport routes
// downcall-bearing handlers over the control path that can serve nested
// crossings.
func (c *Ctx) Downcall(name string, arg uint64) (uint64, error) {
	if c.down == nil {
		return 0, fmt.Errorf("registry: handler %q has no downcall route (register it with Down: true)", c.Name)
	}
	return c.down(name, arg)
}

// NewCtx builds a dispatch context. Dispatchers (internal/xpc, the proc
// worker) call it; handlers never do.
func NewCtx(name string, data []byte, st *State, down func(string, uint64) (uint64, error)) *Ctx {
	return &Ctx{Name: name, Data: data, State: st, down: down}
}

// Handler is one registered decaf call body.
type Handler struct {
	// Cost is the body's virtual CPU cost, charged to the decaf timeline by
	// the kernel-side dispatcher (the worker has no virtual clock).
	Cost time.Duration
	// Down declares that Fn may call Ctx.Downcall. The proc transport
	// routes Down handlers over the socketpair control path (which can
	// serve nested crossings mid-call) instead of the descriptor-ring fast
	// path.
	Down bool
	// Fn is the call body. A panic inside Fn is a decaf fault: contained,
	// reported to the kernel side, and — under the proc transport — fatal
	// to the worker process.
	Fn func(*Ctx) error
}

// table is the immutable snapshot Lookup reads lock-free.
var table atomic.Pointer[map[string]*Handler]

var regMu sync.Mutex

// Register installs (or replaces) the handler for a call name. Call it from
// init() so the table is identical in every exec of the binary, parent and
// worker alike.
func Register(name string, h Handler) {
	if name == "" || h.Fn == nil {
		panic("registry: Register needs a name and a body")
	}
	regMu.Lock()
	defer regMu.Unlock()
	old := table.Load()
	next := make(map[string]*Handler, 1+lenOf(old))
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	hc := h
	next[name] = &hc
	table.Store(&next)
}

func lenOf(m *map[string]*Handler) int {
	if m == nil {
		return 0
	}
	return len(*m)
}

// Lookup returns the handler registered for name, or nil. Lock-free and
// allocation-free: safe on the submit hot path.
//
//decaf:hotpath
func Lookup(name string) *Handler {
	m := table.Load()
	if m == nil {
		return nil
	}
	return (*m)[name]
}

// Names lists the registered handler names, sorted (for docs and tests).
func Names() []string {
	m := table.Load()
	if m == nil {
		return nil
	}
	out := make([]string, 0, len(*m))
	for k := range *m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
