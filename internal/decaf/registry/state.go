package registry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// A Cell is an index into the shared state area: one 64-bit word of driver
// state that worker-side handlers and the kernel side both read and write
// atomically. Cells are allocated by RegisterCell at init() time; because
// the worker is a re-exec of the same binary, init order — and therefore
// every cell's index — is identical in both processes, so a Cell value is
// meaningful on either side of the boundary without any negotiation.
type Cell int

var (
	cellMu    sync.Mutex
	cellNames []string
	cellIndex = map[string]Cell{}
)

// RegisterCell allocates (or returns the existing) state cell for name.
// Call it from package-level var initializers or init() so the allocation
// order is deterministic across re-execs. Names are namespaced by
// convention ("e1000.watchdog_runs").
func RegisterCell(name string) Cell {
	cellMu.Lock()
	defer cellMu.Unlock()
	if c, ok := cellIndex[name]; ok {
		return c
	}
	c := Cell(len(cellNames))
	cellNames = append(cellNames, name)
	cellIndex[name] = c
	return c
}

// CellCount reports how many cells have been registered.
func CellCount() int {
	cellMu.Lock()
	defer cellMu.Unlock()
	return len(cellNames)
}

// CellName returns the name a cell was registered under ("" if out of
// range), for metrics and debugging.
func CellName(c Cell) string {
	cellMu.Lock()
	defer cellMu.Unlock()
	if c < 0 || int(c) >= len(cellNames) {
		return ""
	}
	return cellNames[c]
}

// StateBytes is the byte size of a state area holding every registered
// cell. The registry is process-global, so one area covers all drivers in
// the binary; each Runtime still gets its own instance, so two driver
// instances never share cells.
func StateBytes() int {
	return CellCount() * 8
}

// State is one instance of the shared state area: CellCount() 64-bit words
// over a caller-provided backing. Under the proc transport the backing is
// the shm mapping both processes share; otherwise it is heap memory. All
// access is via sync/atomic, so concurrent access from both sides of the
// boundary is sound (the cells are independent; cross-cell ordering is not
// promised).
type State struct {
	words []uint64
}

// NewState allocates a heap-backed state area sized for every registered
// cell.
func NewState() *State {
	return &State{words: make([]uint64, CellCount())}
}

// BindState overlays a state area onto mem (an shm mapping). mem must be
// 8-byte aligned and at least StateBytes() long; extra bytes are ignored.
func BindState(mem []byte) (*State, error) {
	need := StateBytes()
	if need == 0 {
		return &State{}, nil
	}
	if len(mem) < need {
		return nil, fmt.Errorf("registry: state area %d bytes, need %d", len(mem), need)
	}
	if uintptr(unsafe.Pointer(&mem[0]))%8 != 0 {
		return nil, fmt.Errorf("registry: state area not 8-byte aligned")
	}
	words := unsafe.Slice((*uint64)(unsafe.Pointer(&mem[0])), need/8)
	return &State{words: words}, nil
}

// Load atomically reads a cell. Out-of-range cells (registered after this
// instance was created) read 0.
//
//decaf:hotpath
func (s *State) Load(c Cell) uint64 {
	if s == nil || c < 0 || int(c) >= len(s.words) {
		return 0
	}
	return atomic.LoadUint64(&s.words[c])
}

// Store atomically writes a cell. Out-of-range stores are dropped.
//
//decaf:hotpath
func (s *State) Store(c Cell, v uint64) {
	if s == nil || c < 0 || int(c) >= len(s.words) {
		return
	}
	atomic.StoreUint64(&s.words[c], v)
}

// Add atomically adds d to a cell and returns the new value.
//
//decaf:hotpath
func (s *State) Add(c Cell, d uint64) uint64 {
	if s == nil || c < 0 || int(c) >= len(s.words) {
		return 0
	}
	return atomic.AddUint64(&s.words[c], d)
}

// SameBacking reports whether two state instances share the same backing
// words — used to make shm rebinding idempotent across worker respawns.
func SameBacking(a, b *State) bool {
	if a == nil || b == nil || len(a.words) == 0 || len(b.words) == 0 {
		return false
	}
	return &a.words[0] == &b.words[0]
}

// CopyTo copies every cell this instance holds into dst — used when a
// heap-backed area is promoted to an shm backing, so writes made before the
// transport bound are not lost.
func (s *State) CopyTo(dst *State) {
	if s == nil || dst == nil {
		return
	}
	n := len(s.words)
	if len(dst.words) < n {
		n = len(dst.words)
	}
	for i := 0; i < n; i++ {
		atomic.StoreUint64(&dst.words[i], atomic.LoadUint64(&s.words[i]))
	}
}
