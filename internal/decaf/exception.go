// Package decaf provides the decaf runtime: the user-level support code
// shared by all decaf drivers (paper §3). It supplies the managed-language
// amenities the paper gets from Java — checked-exception-style error
// handling with nested handlers (Figure 4), standard-library collections for
// module-parameter validation (§5.1), helper wrappers for functionality that
// is not expressible in a managed language (port I/O, msleep, sizeof; §5.3)
// — plus the finalizer-based automatic release of shared objects that the
// paper describes as future work (§3.1.2, §5.1).
//
// Decaf call bodies themselves are registered in the handler table
// (handlers.go in this package re-exports internal/decaf/registry): named,
// package-level functions the XPC layer dispatches by name, in the worker
// process under the proc transport and inline otherwise.
//
// The whole package is decaf-side: it may reach kernel-side state only
// through xpc.Runtime crossings, and decafvet's boundary analyzer enforces
// that below.
//
//decaf:boundary
package decaf

import (
	"errors"
	"fmt"
)

// Exception is a checked-exception analogue: user-level driver code throws
// it (via panic) and handlers established with Try/TryCatch receive it. The
// Class field plays the role of the Java exception type
// (e.g. "E1000HWException"), so handlers can be selective.
type Exception struct {
	// Class names the exception type.
	Class string
	// Msg is the human-readable condition.
	Msg string
	// Errno is the kernel error code the exception wraps, when the
	// condition originated as a C-style integer return (negative errno).
	Errno int
	// Cause is the underlying error, if any.
	Cause error
}

// Error implements error.
func (e *Exception) Error() string {
	if e.Errno != 0 {
		return fmt.Sprintf("%s: %s (errno %d)", e.Class, e.Msg, e.Errno)
	}
	return fmt.Sprintf("%s: %s", e.Class, e.Msg)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *Exception) Unwrap() error { return e.Cause }

// Is matches exceptions by class, so errors.Is(err, &Exception{Class: c})
// behaves like a catch clause for class c.
func (e *Exception) Is(target error) bool {
	t, ok := target.(*Exception)
	if !ok {
		return false
	}
	return t.Class == e.Class && (t.Msg == "" || t.Msg == e.Msg)
}

// Throw raises an exception of the given class; control transfers to the
// innermost Try/TryCatch.
func Throw(class, format string, args ...any) {
	panic(&Exception{Class: class, Msg: fmt.Sprintf(format, args...)})
}

// ThrowErrno raises an exception wrapping a C-style negative errno return,
// the conversion the case study applies to 92 E1000 functions.
func ThrowErrno(class string, errno int, what string) {
	panic(&Exception{Class: class, Msg: what, Errno: errno})
}

// ThrowCause raises an exception wrapping an underlying error.
func ThrowCause(class string, cause error, format string, args ...any) {
	panic(&Exception{Class: class, Msg: fmt.Sprintf(format, args...), Cause: cause})
}

// Rethrow re-raises a caught exception, as the nested handlers in the
// paper's Figure 4 do after their cleanup.
func Rethrow(e *Exception) {
	if e == nil {
		panic("decaf: Rethrow(nil)")
	}
	panic(e)
}

// Try runs body and returns the exception it threw, or nil. Non-exception
// panics propagate: only declared (checked) exceptions are caught, so
// genuine bugs still crash loudly.
func Try(body func()) (exc *Exception) {
	defer func() {
		if p := recover(); p != nil {
			e, ok := p.(*Exception)
			if !ok {
				panic(p)
			}
			exc = e
		}
	}()
	body()
	return nil
}

// TryCatch runs body; if it throws, handler runs with the exception.
// A handler that wants Figure 4 semantics performs its cleanup and calls
// Rethrow, propagating to the next enclosing handler.
func TryCatch(body func(), handler func(e *Exception)) {
	if e := Try(body); e != nil {
		handler(e)
	}
}

// Check converts a C-style integer return into an exception: a negative
// value throws, zero or positive returns pass through. This is the
// mechanical rewrite the case study applies ("if(ret_val) return ret_val"
// becomes a bare call), which eliminated 675 lines from e1000_hw.c.
func Check(class string, ret int, what string) int {
	if ret < 0 {
		ThrowErrno(class, ret, what)
	}
	return ret
}

// AsException extracts an *Exception from an error chain.
func AsException(err error) (*Exception, bool) {
	var e *Exception
	ok := errors.As(err, &e)
	return e, ok
}

// ToError converts the result of Try into a plain error for returning
// across the XPC boundary (exceptions do not cross domains; they are
// converted to error codes at the stub, as Java exceptions are in Decaf).
func ToError(e *Exception) error {
	if e == nil {
		return nil
	}
	return e
}
