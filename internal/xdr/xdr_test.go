package xdr

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestPrimitiveRoundTrips(t *testing.T) {
	e := NewEncoder()
	e.PutInt32(-42)
	e.PutUint32(0xDEADBEEF)
	e.PutInt64(-1 << 40)
	e.PutUint64(1 << 60)
	e.PutBool(true)
	e.PutBool(false)
	e.PutString("decaf")
	e.PutOpaque([]byte{1, 2, 3})
	e.PutFixedOpaque([]byte{9, 8})

	d := NewDecoder(e.Bytes())
	if v, _ := d.Int32(); v != -42 {
		t.Fatalf("Int32 = %d", v)
	}
	if v, _ := d.Uint32(); v != 0xDEADBEEF {
		t.Fatalf("Uint32 = %#x", v)
	}
	if v, _ := d.Int64(); v != -1<<40 {
		t.Fatalf("Int64 = %d", v)
	}
	if v, _ := d.Uint64(); v != 1<<60 {
		t.Fatalf("Uint64 = %d", v)
	}
	if v, _ := d.Bool(); !v {
		t.Fatal("Bool #1")
	}
	if v, _ := d.Bool(); v {
		t.Fatal("Bool #2")
	}
	if v, _ := d.String(); v != "decaf" {
		t.Fatalf("String = %q", v)
	}
	if v, _ := d.Opaque(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("Opaque = %v", v)
	}
	if v, _ := d.FixedOpaque(2); !bytes.Equal(v, []byte{9, 8}) {
		t.Fatalf("FixedOpaque = %v", v)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d", d.Remaining())
	}
}

func TestAllItemsFourByteAligned(t *testing.T) {
	for _, s := range []string{"", "a", "ab", "abc", "abcd", "abcde"} {
		e := NewEncoder()
		e.PutString(s)
		if e.Len()%4 != 0 {
			t.Fatalf("string %q encodes to %d bytes, not 4-aligned", s, e.Len())
		}
	}
}

func TestShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint32(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("err = %v", err)
	}
	// Opaque with absurd length prefix must not allocate/overread.
	e := NewEncoder()
	e.PutUint32(1 << 30)
	d = NewDecoder(e.Bytes())
	if _, err := d.Opaque(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("opaque overlength err = %v", err)
	}
}

func TestBadBoolEncoding(t *testing.T) {
	e := NewEncoder()
	e.PutUint32(7)
	d := NewDecoder(e.Bytes())
	if _, err := d.Bool(); err == nil {
		t.Fatal("Bool accepted encoding 7")
	}
}

// Property: string round-trip is identity and encoding length is
// 4 + ceil(len/4)*4.
func TestStringProperty(t *testing.T) {
	f := func(s string) bool {
		e := NewEncoder()
		e.PutString(s)
		want := 4 + (len(s)+3)/4*4
		if e.Len() != want {
			return false
		}
		got, err := NewDecoder(e.Bytes()).String()
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: integer round trips are identity.
func TestIntegerProperty(t *testing.T) {
	f := func(a int32, b uint32, c int64, d uint64) bool {
		e := NewEncoder()
		e.PutInt32(a)
		e.PutUint32(b)
		e.PutInt64(c)
		e.PutUint64(d)
		dec := NewDecoder(e.Bytes())
		ga, _ := dec.Int32()
		gb, _ := dec.Uint32()
		gc, _ := dec.Int64()
		gd, _ := dec.Uint64()
		return ga == a && gb == b && gc == c && gd == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- reflection codec ---

type txRing struct {
	Count uint32
	Head  uint32
	Tail  uint32
}

type adapter struct {
	Name        string
	MsgEnable   int32
	LinkUp      bool
	MAC         [6]byte
	Stats       []uint64
	TxRing      txRing
	RxRing      *txRing
	ConfigSpace [8]uint32

	unexported int //nolint:unused // must be skipped by the codec
}

func sampleAdapter() *adapter {
	return &adapter{
		Name:        "eth0",
		MsgEnable:   3,
		LinkUp:      true,
		MAC:         [6]byte{0, 0x1B, 0x21, 0xAA, 0xBB, 0xCC},
		Stats:       []uint64{10, 20, 30},
		TxRing:      txRing{Count: 256, Head: 5, Tail: 9},
		RxRing:      &txRing{Count: 128, Head: 1, Tail: 2},
		ConfigSpace: [8]uint32{0x8086, 1, 2, 3, 4, 5, 6, 7},
	}
}

func TestCodecStructRoundTrip(t *testing.T) {
	c := &Codec{}
	in := sampleAdapter()
	data, err := c.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out adapter
	outp := &out
	if err := c.Unmarshal(data, &outp); err != nil {
		t.Fatal(err)
	}
	if out.Name != "eth0" || out.MsgEnable != 3 || !out.LinkUp {
		t.Fatalf("scalar fields wrong: %+v", out)
	}
	if out.MAC != in.MAC {
		t.Fatalf("MAC = %v", out.MAC)
	}
	if len(out.Stats) != 3 || out.Stats[2] != 30 {
		t.Fatalf("Stats = %v", out.Stats)
	}
	if out.TxRing != in.TxRing {
		t.Fatalf("TxRing = %+v", out.TxRing)
	}
	if out.RxRing == nil || *out.RxRing != *in.RxRing {
		t.Fatalf("RxRing = %+v", out.RxRing)
	}
	if out.ConfigSpace != in.ConfigSpace {
		t.Fatalf("ConfigSpace = %v", out.ConfigSpace)
	}
}

func TestCodecNilPointer(t *testing.T) {
	c := &Codec{}
	in := sampleAdapter()
	in.RxRing = nil
	data, err := c.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out := sampleAdapter() // starts non-nil; decode must nil it
	if err := c.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.RxRing != nil {
		t.Fatal("nil pointer did not decode to nil")
	}
}

type node struct {
	Value int32
	Next  *node
}

func TestCodecCycle(t *testing.T) {
	c := &Codec{}
	// Circular linked list, the paper's example of a recursive structure.
	a := &node{Value: 1}
	b := &node{Value: 2}
	a.Next = b
	b.Next = a
	data, err := c.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var out *node
	if err := c.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Value != 1 || out.Next.Value != 2 {
		t.Fatalf("values: %d -> %d", out.Value, out.Next.Value)
	}
	if out.Next.Next != out {
		t.Fatal("cycle not preserved: a.next.next != a")
	}
}

type pair struct {
	Left  *node
	Right *node
}

func TestCodecSharedObjectMarshalsOnce(t *testing.T) {
	c := &Codec{}
	shared := &node{Value: 7}
	p := &pair{Left: shared, Right: shared}
	data, err := c.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var out *pair
	if err := c.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Left != out.Right {
		t.Fatal("shared object decoded to two distinct objects")
	}
	// Marshaling the shared node twice would cost 2 x (marker+value);
	// the back-reference form must be strictly smaller.
	single, _ := c.Marshal(&pair{Left: shared, Right: &node{Value: 7}})
	if len(data) >= len(single) {
		t.Fatalf("shared encoding %d bytes, distinct encoding %d", len(data), len(single))
	}
}

func TestCodecFieldMaskEncodesSubset(t *testing.T) {
	full := &Codec{}
	masked := &Codec{Mask: FieldMask{
		"adapter": {"Name": true, "MsgEnable": true},
	}}
	in := sampleAdapter()
	fullBytes, err := full.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	maskBytes, err := masked.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(maskBytes) >= len(fullBytes) {
		t.Fatalf("masked %d bytes >= full %d bytes", len(maskBytes), len(fullBytes))
	}
}

func TestCodecFieldMaskPreservesUnlistedFields(t *testing.T) {
	masked := &Codec{Mask: FieldMask{
		"adapter": {"MsgEnable": true},
	}}
	src := sampleAdapter()
	src.MsgEnable = 99
	data, err := masked.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := sampleAdapter()
	dst.Name = "keep-me"
	if err := masked.Unmarshal(data, &dst); err != nil {
		t.Fatal(err)
	}
	if dst.MsgEnable != 99 {
		t.Fatalf("masked field not transferred: %d", dst.MsgEnable)
	}
	if dst.Name != "keep-me" {
		t.Fatalf("unlisted field overwritten: %q", dst.Name)
	}
}

func TestCodecUpdateExistingObject(t *testing.T) {
	c := &Codec{}
	src := sampleAdapter()
	src.RxRing.Head = 42
	data, err := c.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := sampleAdapter()
	existingRing := dst.RxRing
	if err := c.Unmarshal(data, &dst); err != nil {
		t.Fatal(err)
	}
	if dst.RxRing != existingRing {
		t.Fatal("decode allocated a new object instead of updating in place")
	}
	if dst.RxRing.Head != 42 {
		t.Fatalf("existing object not updated: Head = %d", dst.RxRing.Head)
	}
}

func TestCodecUnmarshalBadTarget(t *testing.T) {
	c := &Codec{}
	if err := c.Unmarshal(nil, 5); err == nil {
		t.Fatal("Unmarshal into non-pointer succeeded")
	}
	var p *adapter
	_ = p
	if err := c.Unmarshal(nil, (*adapter)(nil)); err == nil {
		t.Fatal("Unmarshal into nil pointer succeeded")
	}
}

func TestCodecUnsupportedKind(t *testing.T) {
	c := &Codec{}
	ch := make(chan int)
	if _, err := c.Marshal(&struct{ C chan int }{ch}); err == nil {
		t.Fatal("Marshal of chan succeeded")
	}
}

func TestCodecTruncatedInput(t *testing.T) {
	c := &Codec{}
	data, err := c.Marshal(sampleAdapter())
	if err != nil {
		t.Fatal(err)
	}
	var out *adapter
	if err := c.Unmarshal(data[:len(data)-6], &out); err == nil {
		t.Fatal("truncated decode succeeded")
	}
}

func TestCodecBadBackReference(t *testing.T) {
	c := &Codec{}
	e := NewEncoder()
	e.PutUint32(ptrRef)
	e.PutUint32(99)
	var out *node
	if err := c.Unmarshal(e.Bytes(), &out); err == nil {
		t.Fatal("dangling back-reference decoded")
	}
}

// Property: marshal/unmarshal of a generated struct is identity on all
// masked-in fields.
func TestCodecRoundTripProperty(t *testing.T) {
	type sample struct {
		A int32
		B uint64
		C string
		D bool
		E []byte
	}
	c := &Codec{}
	f := func(a int32, b uint64, s string, d bool, e []byte) bool {
		in := &sample{A: a, B: b, C: s, D: d, E: e}
		data, err := c.Marshal(in)
		if err != nil {
			return false
		}
		var out sample
		op := &out
		if err := c.Unmarshal(data, &op); err != nil {
			return false
		}
		if len(e) == 0 && len(out.E) == 0 {
			out.E = e // nil vs empty slice equivalence
		}
		return out.A == a && out.B == b && out.C == s && out.D == d && bytes.Equal(out.E, e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
