package xdr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness: unmarshaling attacker-controlled or corrupted bytes into any
// of the driver-structure shapes must fail cleanly (error), never panic or
// over-allocate — the decoder runs in the driver library with kernel data
// on the other side.

type robustRing struct {
	Count uint32
	Head  uint32
}

type robustAdapter struct {
	Name  string
	MAC   [6]byte
	Stats []uint64
	Ring  *robustRing
	Peers []*robustRing
	Meta  map[string]int // unsupported kind: must error, not panic
}

type robustSane struct {
	Name  string
	MAC   [6]byte
	Stats []uint64
	Ring  *robustRing
	Peers []*robustRing
}

func TestUnmarshalRandomBytesNeverPanics(t *testing.T) {
	c := &Codec{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(256))
		rng.Read(buf)
		var out robustSane
		op := &out
		// Must not panic; error or success are both acceptable.
		_ = c.Unmarshal(buf, &op)
	}
}

func TestUnmarshalTruncationsNeverPanic(t *testing.T) {
	c := &Codec{}
	in := &robustSane{
		Name:  "eth0",
		MAC:   [6]byte{1, 2, 3, 4, 5, 6},
		Stats: []uint64{1, 2, 3},
		Ring:  &robustRing{Count: 256},
		Peers: []*robustRing{{Count: 1}, nil, {Count: 2}},
	}
	data, err := c.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		var out robustSane
		op := &out
		if err := c.Unmarshal(data[:cut], &op); err == nil && cut < len(data)-4 {
			// Short prefixes may occasionally decode if they happen to
			// form a complete value; that is fine. The requirement is no
			// panic, which reaching this line demonstrates.
			_ = err
		}
	}
}

func TestUnmarshalBitFlipsNeverPanic(t *testing.T) {
	c := &Codec{}
	in := &robustSane{Name: "x", Stats: []uint64{9}, Ring: &robustRing{}}
	data, err := c.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << bit
			var out robustSane
			op := &out
			_ = c.Unmarshal(mut, &op)
		}
	}
}

func TestMarshalUnsupportedFieldFailsCleanly(t *testing.T) {
	c := &Codec{}
	in := &robustAdapter{Meta: map[string]int{"x": 1}}
	if _, err := c.Marshal(in); err == nil {
		t.Fatal("map field marshaled")
	}
}

// Property: a hostile length prefix cannot make the decoder allocate more
// than the input it was handed (no billion-laughs).
func TestHostileLengthBounded(t *testing.T) {
	c := &Codec{}
	f := func(claim uint32) bool {
		e := NewEncoder()
		e.PutUint32(claim | 1<<20) // huge claimed slice length
		var out robustSane
		op := &out
		err := c.Unmarshal(e.Bytes(), &op)
		// Either it errors, or it decoded something tiny; the Stats slice
		// can never exceed the input length in elements.
		return err != nil || len(out.Stats) <= len(e.Bytes())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: marshal -> unmarshal -> marshal is a fixed point (canonical
// encoding).
func TestCanonicalEncodingProperty(t *testing.T) {
	c := &Codec{}
	f := func(name string, count, head uint32, stats []uint64) bool {
		in := &robustSane{Name: name, Stats: stats, Ring: &robustRing{Count: count, Head: head}}
		d1, err := c.Marshal(in)
		if err != nil {
			return false
		}
		var mid robustSane
		mp := &mid
		if err := c.Unmarshal(d1, &mp); err != nil {
			return false
		}
		d2, err := c.Marshal(&mid)
		if err != nil {
			return false
		}
		if len(d1) != len(d2) {
			return false
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
