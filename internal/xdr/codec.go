package xdr

import (
	"fmt"
	"reflect"
	"sync"
)

// FieldMask selects, per structure type name, which exported fields are
// marshaled. A nil entry (or absent type) marshals every field. This is the
// wire-level realization of DriverSlicer's customized marshaling: structures
// "defined for the kernel's internal use but shared with drivers are passed
// with only the driver-accessed fields" (paper §2.3). Fields omitted by the
// mask retain their previous values at the decode side.
type FieldMask map[string]map[string]bool

// Allows reports whether the mask admits field f of struct type t.
func (m FieldMask) Allows(t, f string) bool {
	if m == nil {
		return true
	}
	fields, ok := m[t]
	if !ok || fields == nil {
		return true
	}
	return fields[f]
}

// Codec marshals Go values to XDR and back using reflection, with
// object-identity tracking for pointers (cycles marshal once and
// back-reference thereafter) and optional field masks.
//
// Supported field types: bool, integer kinds (8/16/32-bit encode as XDR
// int/unsigned, 64-bit as hyper), string, byte slices/arrays (opaque),
// other slices (variable array), arrays (fixed array), structs, and
// pointers to structs (optional + reference tracking).
type Codec struct {
	// Mask restricts which struct fields are transferred; nil transfers all.
	Mask FieldMask
}

// Pointer markers on the wire.
const (
	ptrNil = 0
	ptrVal = 1
	ptrRef = 2
)

type encState struct {
	enc  Encoder
	seen map[uintptr]uint32 // pointer -> object index
	next uint32
	c    *Codec
}

// encStatePool recycles encoder state (identity map and scratch) between
// marshals, so steady-state marshaling allocates nothing beyond the output
// buffer — and not even that when the caller reuses one via MarshalAppend.
var encStatePool = sync.Pool{
	New: func() any { return &encState{seen: make(map[uintptr]uint32)} },
}

func (st *encState) release() {
	clear(st.seen)
	st.next = 0
	st.c = nil
	st.enc.buf = nil
	encStatePool.Put(st)
}

// Marshal encodes v (any supported value, typically a pointer to a driver
// structure) and returns the XDR bytes in a fresh buffer.
func (c *Codec) Marshal(v any) ([]byte, error) {
	return c.MarshalAppend(nil, v)
}

// MarshalAppend encodes v, appending the XDR bytes to dst and returning the
// extended buffer. Passing a recycled dst (length 0, retained capacity)
// makes steady-state marshaling allocation-free.
func (c *Codec) MarshalAppend(dst []byte, v any) ([]byte, error) {
	st := encStatePool.Get().(*encState)
	st.c = c
	st.enc.buf = dst
	err := st.value(reflect.ValueOf(v))
	out := st.enc.buf
	st.release()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MarshalSize reports the encoded size of v without retaining the buffer.
func (c *Codec) MarshalSize(v any) (int, error) {
	bp := sizeBufPool.Get().(*[]byte)
	b, err := c.MarshalAppend((*bp)[:0], v)
	if err != nil {
		sizeBufPool.Put(bp)
		return 0, err
	}
	n := len(b)
	*bp = b[:0]
	sizeBufPool.Put(bp)
	return n, nil
}

var sizeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

func (s *encState) value(v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		s.enc.PutBool(v.Bool())
	case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int:
		s.enc.PutInt32(int32(v.Int()))
	case reflect.Int64:
		s.enc.PutInt64(v.Int())
	case reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint:
		s.enc.PutUint32(uint32(v.Uint()))
	case reflect.Uint64, reflect.Uintptr:
		s.enc.PutUint64(v.Uint())
	case reflect.String:
		s.enc.PutString(v.String())
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Uint8 {
			s.enc.PutOpaque(v.Bytes())
			return nil
		}
		s.enc.PutUint32(uint32(v.Len()))
		for i := 0; i < v.Len(); i++ {
			if err := s.value(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Array:
		if v.Type().Elem().Kind() == reflect.Uint8 {
			b := make([]byte, v.Len())
			reflect.Copy(reflect.ValueOf(b), v)
			s.enc.PutFixedOpaque(b)
			return nil
		}
		for i := 0; i < v.Len(); i++ {
			if err := s.value(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Struct:
		return s.structValue(v)
	case reflect.Ptr:
		return s.pointer(v)
	default:
		return fmt.Errorf("xdr: unsupported kind %v", v.Kind())
	}
	return nil
}

func (s *encState) structValue(v reflect.Value) error {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		if !s.c.Mask.Allows(t.Name(), f.Name) {
			continue
		}
		if err := s.value(v.Field(i)); err != nil {
			return fmt.Errorf("%s.%s: %w", t.Name(), f.Name, err)
		}
	}
	return nil
}

func (s *encState) pointer(v reflect.Value) error {
	if v.IsNil() {
		s.enc.PutUint32(ptrNil)
		return nil
	}
	addr := v.Pointer()
	if idx, ok := s.seen[addr]; ok {
		s.enc.PutUint32(ptrRef)
		s.enc.PutUint32(idx)
		return nil
	}
	s.seen[addr] = s.next
	s.next++
	s.enc.PutUint32(ptrVal)
	return s.value(v.Elem())
}

type decState struct {
	dec  Decoder
	objs []reflect.Value // object index -> decoded pointer
	c    *Codec
}

// decStatePool recycles decoder state between unmarshals.
var decStatePool = sync.Pool{
	New: func() any { return &decState{} },
}

// Unmarshal decodes XDR bytes into target, which must be a non-nil pointer.
// Struct fields excluded by the codec's mask are left untouched, which is
// how the object tracker's "update the existing object" semantics preserve
// unmarshaled state. Nothing decoded retains data; callers may reuse the
// buffer afterwards.
func (c *Codec) Unmarshal(data []byte, target any) error {
	v := reflect.ValueOf(target)
	if v.Kind() != reflect.Ptr || v.IsNil() {
		return fmt.Errorf("xdr: Unmarshal target must be a non-nil pointer, got %T", target)
	}
	st := decStatePool.Get().(*decState)
	st.c = c
	st.dec = Decoder{buf: data}
	err := st.value(v.Elem())
	for i := range st.objs {
		st.objs[i] = reflect.Value{}
	}
	st.objs = st.objs[:0]
	st.c = nil
	st.dec = Decoder{}
	decStatePool.Put(st)
	return err
}

func (s *decState) value(v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		b, err := s.dec.Bool()
		if err != nil {
			return err
		}
		v.SetBool(b)
	case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int:
		n, err := s.dec.Int32()
		if err != nil {
			return err
		}
		v.SetInt(int64(n))
	case reflect.Int64:
		n, err := s.dec.Int64()
		if err != nil {
			return err
		}
		v.SetInt(n)
	case reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint:
		n, err := s.dec.Uint32()
		if err != nil {
			return err
		}
		v.SetUint(uint64(n))
	case reflect.Uint64, reflect.Uintptr:
		n, err := s.dec.Uint64()
		if err != nil {
			return err
		}
		v.SetUint(n)
	case reflect.String:
		str, err := s.dec.String()
		if err != nil {
			return err
		}
		v.SetString(str)
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Uint8 {
			b, err := s.dec.Opaque()
			if err != nil {
				return err
			}
			v.SetBytes(b)
			return nil
		}
		n, err := s.dec.Uint32()
		if err != nil {
			return err
		}
		if int(n) > s.dec.Remaining() {
			return fmt.Errorf("%w: array length %d exceeds remaining %d", ErrShortBuffer, n, s.dec.Remaining())
		}
		sl := reflect.MakeSlice(v.Type(), int(n), int(n))
		for i := 0; i < int(n); i++ {
			if err := s.value(sl.Index(i)); err != nil {
				return err
			}
		}
		v.Set(sl)
	case reflect.Array:
		if v.Type().Elem().Kind() == reflect.Uint8 {
			b, err := s.dec.FixedOpaque(v.Len())
			if err != nil {
				return err
			}
			reflect.Copy(v, reflect.ValueOf(b))
			return nil
		}
		for i := 0; i < v.Len(); i++ {
			if err := s.value(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Struct:
		return s.structValue(v)
	case reflect.Ptr:
		return s.pointer(v)
	default:
		return fmt.Errorf("xdr: unsupported kind %v", v.Kind())
	}
	return nil
}

func (s *decState) structValue(v reflect.Value) error {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		if !s.c.Mask.Allows(t.Name(), f.Name) {
			continue
		}
		if err := s.value(v.Field(i)); err != nil {
			return fmt.Errorf("%s.%s: %w", t.Name(), f.Name, err)
		}
	}
	return nil
}

func (s *decState) pointer(v reflect.Value) error {
	marker, err := s.dec.Uint32()
	if err != nil {
		return err
	}
	switch marker {
	case ptrNil:
		v.Set(reflect.Zero(v.Type()))
		return nil
	case ptrRef:
		idx, err := s.dec.Uint32()
		if err != nil {
			return err
		}
		if int(idx) >= len(s.objs) {
			return fmt.Errorf("xdr: back-reference %d out of range (have %d objects)", idx, len(s.objs))
		}
		ref := s.objs[idx]
		if !ref.Type().AssignableTo(v.Type()) {
			return fmt.Errorf("xdr: back-reference type %v not assignable to %v", ref.Type(), v.Type())
		}
		v.Set(ref)
		return nil
	case ptrVal:
		// Reuse the existing object if the target already points somewhere
		// (object-tracker update semantics); otherwise allocate.
		if v.IsNil() {
			v.Set(reflect.New(v.Type().Elem()))
		}
		s.objs = append(s.objs, v)
		// Register before descending so cycles resolve. Note the registered
		// value is the pointer itself (stable across the descent).
		s.objs[len(s.objs)-1] = reflect.ValueOf(v.Interface())
		return s.value(v.Elem())
	default:
		return fmt.Errorf("xdr: pointer marker %d", marker)
	}
}
