package xdr

import (
	"errors"
	"testing"
)

func TestSlotDescriptorRoundTrip(t *testing.T) {
	c := &Codec{}
	s := SlotDescriptor{Index: 7, Length: 1462, Generation: 3}
	wire := c.AppendSlotDescriptor(nil, s)
	if len(wire) != SlotDescriptorWireSize {
		t.Fatalf("wire size = %d, want %d", len(wire), SlotDescriptorWireSize)
	}
	got, err := c.DecodeSlotDescriptor(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip = %+v, want %+v", got, s)
	}
}

func TestSlotDescriptorAppendPreservesPrefix(t *testing.T) {
	c := &Codec{}
	prefix := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	wire := c.AppendSlotDescriptor(append([]byte(nil), prefix...), SlotDescriptor{Index: 1, Length: 2, Generation: 3})
	if len(wire) != len(prefix)+SlotDescriptorWireSize {
		t.Fatalf("len = %d", len(wire))
	}
	for i, b := range prefix {
		if wire[i] != b {
			t.Fatalf("prefix clobbered at %d", i)
		}
	}
	got, err := c.DecodeSlotDescriptor(wire[len(prefix):])
	if err != nil || got.Generation != 3 {
		t.Fatalf("decode after prefix: %+v, %v", got, err)
	}
}

func TestSlotDescriptorShortBuffer(t *testing.T) {
	c := &Codec{}
	wire := c.AppendSlotDescriptor(nil, SlotDescriptor{Index: 1, Length: 2, Generation: 3})
	for n := 0; n < len(wire); n++ {
		if _, err := c.DecodeSlotDescriptor(wire[:n]); !errors.Is(err, ErrShortBuffer) {
			t.Fatalf("truncated at %d: err = %v, want ErrShortBuffer", n, err)
		}
	}
}

func TestSlotDescriptorValidity(t *testing.T) {
	if (SlotDescriptor{}).Valid() {
		t.Fatal("zero descriptor must be invalid (generation 0 is reserved)")
	}
	if !(SlotDescriptor{Generation: 1}).Valid() {
		t.Fatal("generation 1 descriptor must be valid")
	}
}

func TestSlotDescriptorEncoderPrimitives(t *testing.T) {
	e := NewEncoder()
	e.PutSlotDescriptor(SlotDescriptor{Index: 9, Length: 64, Generation: 2})
	d := NewDecoder(e.Bytes())
	got, err := d.SlotDescriptor()
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != 9 || got.Length != 64 || got.Generation != 2 {
		t.Fatalf("got %+v", got)
	}
	if d.Remaining() != 0 {
		t.Fatalf("descriptor left %d bytes undecoded", d.Remaining())
	}
}
