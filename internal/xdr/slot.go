package xdr

// SlotDescriptor is the wire form of a zero-copy payload reference: instead
// of marshaling payload bytes across the boundary, a data-carrying call
// encodes the (index, length, generation) of a buffer in a payload ring that
// both sides registered at initialization — the direct-transfer optimization
// the paper proposes in §4.2 for the driver data path. The descriptor is
// twelve bytes on the wire regardless of payload size.
//
// Generation 0 is never issued by a ring, so the zero SlotDescriptor means
// "no slot" and a call carrying it falls back to full payload marshaling.
type SlotDescriptor struct {
	// Index is the slot's position in the registered ring.
	Index uint32
	// Length is the payload's length in bytes (<= the ring's slot size).
	Length uint32
	// Generation is the slot's allocation generation; a receiver rejects a
	// descriptor whose generation does not match the slot's current one
	// (stale reference: the slot was recycled).
	Generation uint32
}

// SlotDescriptorWireSize is the encoded size of a SlotDescriptor: three XDR
// unsigned ints.
const SlotDescriptorWireSize = 12

// Valid reports whether the descriptor references a slot (rings never issue
// generation 0).
func (s SlotDescriptor) Valid() bool { return s.Generation != 0 }

// PutSlotDescriptor encodes a slot descriptor.
func (e *Encoder) PutSlotDescriptor(s SlotDescriptor) {
	e.PutUint32(s.Index)
	e.PutUint32(s.Length)
	e.PutUint32(s.Generation)
}

// SlotDescriptor decodes a slot descriptor.
func (d *Decoder) SlotDescriptor() (SlotDescriptor, error) {
	var s SlotDescriptor
	var err error
	if s.Index, err = d.Uint32(); err != nil {
		return SlotDescriptor{}, err
	}
	if s.Length, err = d.Uint32(); err != nil {
		return SlotDescriptor{}, err
	}
	if s.Generation, err = d.Uint32(); err != nil {
		return SlotDescriptor{}, err
	}
	return s, nil
}

// AppendSlotDescriptor encodes s without a reflection walk, appending to dst
// — the descriptor is the zero-copy fast path, so its encode cost must not
// scale with anything. Field masks do not apply: every descriptor field is
// load-bearing.
func (c *Codec) AppendSlotDescriptor(dst []byte, s SlotDescriptor) []byte {
	e := Encoder{buf: dst}
	e.PutSlotDescriptor(s)
	return e.buf
}

// DecodeSlotDescriptor decodes the descriptor at the start of data.
func (c *Codec) DecodeSlotDescriptor(data []byte) (SlotDescriptor, error) {
	d := Decoder{buf: data}
	return d.SlotDescriptor()
}
