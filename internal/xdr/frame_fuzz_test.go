package xdr

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame drives DecodeFrame with arbitrary bytes: it must never
// panic, never over-consume, and anything it accepts must re-encode to an
// equivalent frame (the codec is its own inverse on the accepted set). The
// committed seed corpus under testdata/fuzz covers every frame kind plus
// truncated and bit-flipped variants; `go test -fuzz=FuzzDecodeFrame` grows
// it from there.
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range everyFrameKind() {
		wire, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
		if len(wire) > 5 {
			f.Add(wire[:len(wire)-3]) // truncated tail
			flipped := append([]byte(nil), wire...)
			flipped[4] ^= 0x40 // corrupt kind byte
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < frameFixedSize+4 || n > len(data) {
			t.Fatalf("accepted frame consumed %d of %d bytes", n, len(data))
		}
		wire, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("accepted frame %+v fails to re-encode: %v", fr, err)
		}
		back, m, err := DecodeFrame(wire)
		if err != nil {
			t.Fatalf("re-encoded frame fails to decode: %v", err)
		}
		if m != len(wire) || back.Kind != fr.Kind || back.ID != fr.ID || back.Up != fr.Up ||
			back.Inject != fr.Inject || back.Name != fr.Name || back.Slot != fr.Slot ||
			back.Status != fr.Status || back.Aux != fr.Aux || back.Lane != fr.Lane ||
			!bytes.Equal(back.Data, fr.Data) {
			t.Fatalf("codec not self-inverse:\n first %+v\nsecond %+v", fr, back)
		}
	})
}
