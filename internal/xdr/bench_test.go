package xdr

import "testing"

type benchRing struct {
	Count uint32
	Head  uint32
	Tail  uint32
}

type benchAdapter struct {
	Name      string
	MsgEnable int32
	LinkUp    bool
	MAC       [6]byte
	EEPROM    [64]uint16
	Tx        benchRing
	Rx        benchRing
	Stats     [8]uint64
	Next      *benchRing
}

func benchValue() *benchAdapter {
	a := &benchAdapter{Name: "eth0", MsgEnable: 3, LinkUp: true}
	for i := range a.EEPROM {
		a.EEPROM[i] = uint16(i * 13)
	}
	a.Tx = benchRing{Count: 256, Head: 12, Tail: 200}
	a.Next = &a.Tx // pointer + back-reference path
	return a
}

// BenchmarkMarshal is the seed codec path: a fresh buffer every call.
func BenchmarkMarshal(b *testing.B) {
	c := &Codec{}
	v := benchValue()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Marshal(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalAppend is the pooled path: the caller recycles one buffer,
// and the codec recycles its encoder state, so steady-state marshaling does
// not allocate.
func BenchmarkMarshalAppend(b *testing.B) {
	c := &Codec{}
	v := benchValue()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := c.MarshalAppend(buf[:0], v)
		if err != nil {
			b.Fatal(err)
		}
		buf = out
	}
}

// BenchmarkRoundTrip is one sync leg: marshal into a reused buffer, then
// unmarshal over an existing object — the XPC steady state.
func BenchmarkRoundTrip(b *testing.B) {
	c := &Codec{}
	src := benchValue()
	dst := benchValue()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := c.MarshalAppend(buf[:0], src)
		if err != nil {
			b.Fatal(err)
		}
		buf = out
		// &dst so the decoder consumes the top-level pointer marker and
		// updates the existing object, as the XPC sync legs do.
		if err := c.Unmarshal(buf, &dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalMasked measures the field-mask fast path.
func BenchmarkMarshalMasked(b *testing.B) {
	c := &Codec{Mask: FieldMask{"benchAdapter": {"MsgEnable": true, "LinkUp": true}}}
	v := benchValue()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := c.MarshalAppend(buf[:0], v)
		if err != nil {
			b.Fatal(err)
		}
		buf = out
	}
}
