package xdr

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// everyFrameKind returns one representative frame per wire kind, exercising
// every field combination the protocol produces.
func everyFrameKind() []Frame {
	return []Frame{
		{Kind: FrameSubmit, ID: 1, Up: true, Name: "e1000_xmit_frame",
			Data: []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01}},
		{Kind: FrameSubmit, ID: 2, Up: false, Name: "eeprom_read",
			Slot: SlotDescriptor{Index: 7, Length: 1462, Generation: 3}, Lane: 3},
		{Kind: FrameSubmit, ID: 3, Up: true, Name: "watchdog"},
		{Kind: FrameComplete, ID: 2, Status: 0, Aux: 0xCBF29CE484222325, Lane: 3},
		{Kind: FrameComplete, ID: 9, Status: 2, Name: "slot out of range", Lane: 7},
		{Kind: FrameRingRegister, ID: 4, Aux: 256<<32 | 2048},
		{Kind: FrameRingRelease, ID: 5},
		{Kind: FramePing, ID: 6},
		{Kind: FramePong, ID: 6},
		{Kind: FrameShutdown, ID: 7},
		{Kind: FrameDescRing, ID: 8, Aux: 1024<<32 | 2048, Lane: 4},
		{Kind: FrameTraceRing, ID: 10, Aux: 4096<<32 | 9},
		{Kind: FrameCall, ID: 11, Up: true, Name: "e1000_xmit_frame", Aux: 3,
			Slot: SlotDescriptor{Index: 2, Length: 640, Generation: 1}, Lane: 2},
		{Kind: FrameCall, ID: 12, Up: true, Inject: true, Name: "ens1371_trigger",
			Data: []byte{0x01}},
		{Kind: FrameDown, ID: 11, Name: "e1000_read_status", Aux: 0x83},
		{Kind: FrameDownResult, ID: 11, Aux: 0x80080783},
		{Kind: FrameDownResult, ID: 12, Status: 1, Name: "unknown downcall"},
		{Kind: FrameStateMap, ID: 13, Aux: 1 << 20 << 32 | 512},
	}
}

// TestFrameWireSize: the size predictor must match AppendFrame exactly for
// every kind and field combination — the descriptor-ring fast path relies on
// it to prove an encode into a fixed slot cannot spill.
func TestFrameWireSize(t *testing.T) {
	for _, f := range everyFrameKind() {
		wire, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatalf("%v: encode: %v", f.Kind, err)
		}
		if got := FrameWireSize(f); got != len(wire) {
			t.Errorf("%v: FrameWireSize = %d, encoded %d bytes", f.Kind, got, len(wire))
		}
	}
}

func TestFrameRoundTripEveryKind(t *testing.T) {
	for _, want := range everyFrameKind() {
		wire, err := AppendFrame(nil, want)
		if err != nil {
			t.Fatalf("%v: encode: %v", want.Kind, err)
		}
		if len(wire)%4 != 0 {
			t.Errorf("%v: wire length %d not 4-aligned", want.Kind, len(wire))
		}
		got, n, err := DecodeFrame(wire)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Kind, err)
		}
		if n != len(wire) {
			t.Errorf("%v: consumed %d of %d bytes", want.Kind, n, len(wire))
		}
		if got.Kind != want.Kind || got.ID != want.ID || got.Up != want.Up ||
			got.Inject != want.Inject || got.Name != want.Name || got.Slot != want.Slot ||
			got.Status != want.Status || got.Aux != want.Aux ||
			got.Lane != want.Lane || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("%v: round trip\n got %+v\nwant %+v", want.Kind, got, want)
		}
	}
}

func TestFrameStreamDecodesBackToBack(t *testing.T) {
	frames := everyFrameKind()
	var wire []byte
	var err error
	for _, f := range frames {
		if wire, err = AppendFrame(wire, f); err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	for i, want := range frames {
		got, n, err := DecodeFrame(wire[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.ID != want.ID {
			t.Fatalf("frame %d: got %v/%d want %v/%d", i, got.Kind, got.ID, want.Kind, want.ID)
		}
		off += n
	}
	if off != len(wire) {
		t.Fatalf("stream left %d undecoded bytes", len(wire)-off)
	}
}

// TestFrameDecodeDoesNotAliasInput: the decoded frame must survive reuse of
// the read buffer it was decoded from — the wire buffer is recycled per
// read, while frames may outlive it.
func TestFrameDecodeDoesNotAliasInput(t *testing.T) {
	src := Frame{Kind: FrameSubmit, ID: 11, Up: true, Name: "tx", Data: []byte("payload!")}
	wire, err := AppendFrame(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeFrame(wire)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wire {
		wire[i] = 0xFF
	}
	if got.Name != "tx" || !bytes.Equal(got.Data, []byte("payload!")) {
		t.Fatalf("decoded frame aliases the wire buffer: %+v", got)
	}
}

// TestFrameEncodeDoesNotAliasSource: mutating the caller's payload slice
// after AppendFrame returns must not change the encoded bytes — the wire
// copy is taken at encode time (the cross-process half of the
// Batch.UpcallData ownership rule).
func TestFrameEncodeDoesNotAliasSource(t *testing.T) {
	data := []byte{1, 2, 3, 4}
	wire, err := AppendFrame(nil, Frame{Kind: FrameSubmit, ID: 1, Name: "tx", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	snap := append([]byte(nil), wire...)
	for i := range data {
		data[i] = 0xAA
	}
	if !bytes.Equal(wire, snap) {
		t.Fatal("encoded frame aliases the caller's payload slice")
	}
}

func TestFrameTruncationAtEveryLength(t *testing.T) {
	for _, f := range everyFrameKind() {
		wire, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(wire); n++ {
			if _, _, err := DecodeFrame(wire[:n]); err == nil {
				t.Fatalf("%v: truncation to %d of %d bytes decoded successfully", f.Kind, n, len(wire))
			}
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	valid, err := AppendFrame(nil, Frame{Kind: FrameSubmit, ID: 1, Name: "tx", Data: []byte{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(b []byte)
	}{
		{"zero kind", func(b []byte) { b[4] = 0 }},
		{"unknown kind", func(b []byte) { b[4] = 99 }},
		{"reserved flags", func(b []byte) { b[5] = 0x80 }},
		{"oversized name length", func(b []byte) { b[6] = 0xFF; b[7] = 0xFF }},
		{"length prefix too small", func(b []byte) { b[3] -= 4 }},
		{"length prefix too large", func(b []byte) { b[3] += 4 }},
		{"length prefix huge", func(b []byte) { b[0] = 0xFF }},
	}
	for _, tc := range cases {
		wire := append([]byte(nil), valid...)
		tc.mutate(wire)
		if _, _, err := DecodeFrame(wire); err == nil {
			t.Errorf("%s: decoded successfully", tc.name)
		}
	}
}

func TestFrameEncodeRejectsOversize(t *testing.T) {
	if _, err := AppendFrame(nil, Frame{Kind: FrameSubmit, Name: strings.Repeat("x", MaxFrameName+1)}); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("oversized name: err = %v", err)
	}
	if _, err := AppendFrame(nil, Frame{Kind: FrameSubmit, Data: make([]byte, MaxFramePayload+1)}); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("oversized payload: err = %v", err)
	}
	if _, err := AppendFrame(nil, Frame{Kind: 0}); !errors.Is(err, ErrFrameCorrupt) {
		t.Errorf("invalid kind: err = %v", err)
	}
}
