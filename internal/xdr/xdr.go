// Package xdr implements the External Data Representation standard
// (RFC 4506) subset that Decaf Drivers uses to marshal driver data
// structures between the driver nucleus, the driver library, and the decaf
// driver (paper §3.2.3), plus the two extensions the paper makes to the
// stock rpcgen/jrpcgen compilers:
//
//   - object-identity tracking: a structure reachable through several
//     pointers (including cycles) is marshaled once, with back-references
//     thereafter, "so that passing two structures that both reference a
//     third results in marshaling the third structure just once";
//   - field-level masks, the mechanism behind "customized marshaling of
//     data structures to copy only those fields actually accessed at the
//     target" (§2.3).
//
// Encoding rules follow RFC 4506: all items are multiples of four bytes,
// big-endian; integers up to 32 bits encode as four bytes, hyper as eight;
// variable-length opaque/string/array data carries a length prefix and is
// zero-padded to four bytes.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBuffer is returned when a decoder runs out of input.
var ErrShortBuffer = errors.New("xdr: short buffer")

// Encoder appends XDR-encoded items to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len reports the encoded size so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUint32 encodes an XDR unsigned int.
func (e *Encoder) PutUint32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// PutInt32 encodes an XDR int.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutUint64 encodes an XDR unsigned hyper.
func (e *Encoder) PutUint64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// PutInt64 encodes an XDR hyper.
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutBool encodes an XDR bool (int 0 or 1).
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

func pad(n int) int { return (4 - n%4) % 4 }

// PutFixedOpaque encodes fixed-length opaque data (no length prefix),
// zero-padded to a multiple of four bytes.
func (e *Encoder) PutFixedOpaque(b []byte) {
	e.buf = append(e.buf, b...)
	for i := 0; i < pad(len(b)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// PutFixedString encodes a string exactly as PutFixedOpaque would its bytes,
// but appends the string directly — no []byte(s) conversion, so encoding a
// name into a preallocated buffer performs zero heap allocations (the frame
// codec's steady-state requirement under the descriptor rings).
func (e *Encoder) PutFixedString(s string) {
	e.buf = append(e.buf, s...)
	for i := 0; i < pad(len(s)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// PutOpaque encodes variable-length opaque data with its length prefix.
func (e *Encoder) PutOpaque(b []byte) {
	e.PutUint32(uint32(len(b)))
	e.PutFixedOpaque(b)
}

// PutString encodes an XDR string.
func (e *Encoder) PutString(s string) { e.PutOpaque([]byte(s)) }

// Decoder consumes XDR-encoded items from a buffer.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder reading from b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Remaining reports undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) ([]byte, error) {
	if d.off+n > len(d.buf) {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrShortBuffer, n, d.off, len(d.buf))
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

// Uint32 decodes an XDR unsigned int.
func (d *Decoder) Uint32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// Int32 decodes an XDR int.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes an XDR unsigned hyper.
func (d *Decoder) Uint64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// Int64 decodes an XDR hyper.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool decodes an XDR bool, rejecting values other than 0 and 1.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("xdr: bool encoding %d", v)
	}
}

// FixedOpaque decodes n bytes of fixed-length opaque data (plus padding).
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	b, err := d.take(n)
	if err != nil {
		return nil, err
	}
	if _, err := d.take(pad(n)); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

// Opaque decodes variable-length opaque data.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(n) > d.Remaining() {
		return nil, fmt.Errorf("%w: opaque length %d exceeds remaining %d", ErrShortBuffer, n, d.Remaining())
	}
	return d.FixedOpaque(int(n))
}

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	return string(b), err
}
