package xdr

import (
	"errors"
	"fmt"
)

// FrameKind discriminates the messages of the process-separated XPC wire
// protocol: the frames a ProcTransport exchanges with its decaf worker
// process over the socketpair. The codec is reflection-free — every field is
// encoded by hand with the XDR primitives — because the frame is the
// per-crossing hot path of a real process boundary.
type FrameKind uint8

// Wire frame kinds.
const (
	// FrameSubmit carries one crossing request to the worker: entry-point
	// name, direction, and either a payload-ring slot descriptor (zero-copy
	// fast path: the bytes stay in the shared mapping) or the payload bytes
	// themselves (copy fallback).
	FrameSubmit FrameKind = 1 + iota
	// FrameComplete acknowledges one frame by ID: Status is zero on
	// success, and Aux carries the worker's FNV-64a checksum of the payload
	// it observed — the kernel side compares it against its own view, which
	// only matches if the two address spaces really share the bytes.
	FrameComplete
	// FrameRingRegister publishes a payload ring's geometry to the worker:
	// Aux packs slots<<32 | slotSize. The ring's buffers are the shared
	// memory region the worker mapped at startup.
	FrameRingRegister
	// FrameRingRelease withdraws the ring registration (recovery teardown).
	FrameRingRelease
	// FramePing / FramePong are the liveness probe pair.
	FramePing
	FramePong
	// FrameShutdown asks the worker to exit cleanly; it is not acknowledged.
	FrameShutdown
	// FrameDescRing publishes the shared-memory descriptor-ring geometry to
	// the worker: Aux packs entries<<32 | slotSize. The two SPSC rings (one
	// per direction) live at the tail of the shared region; once the worker
	// acknowledges, steady-state submit/complete frames ride the rings and
	// the socketpair is demoted to a doorbell/control slow path.
	FrameDescRing
	// FrameTraceRing publishes the flight-recorder trace-ring geometry to
	// the worker: Aux packs entries<<32 | ringCount. The rings live at the
	// very tail of the shared region (behind the descriptor-ring lanes);
	// the worker appends its service-loop events into the last ring, so
	// both processes write one shared timeline. Sent before FrameDescRing
	// when tracing is enabled; a worker that never receives it traces
	// nothing.
	FrameTraceRing
	// FrameCall dispatches one decaf call body to the worker's handler
	// table: Name is the registered handler name, the payload travels like
	// FrameSubmit (slot descriptor or copy bytes), and Aux counts the
	// FrameCall frames remaining after this one in the same chunk (so the
	// worker can skip the rest of an aborting chunk with kernel-side
	// parity). The Inject flag asks the worker to report an injected fault
	// without executing the body. The completion's Status distinguishes
	// executed / failed / faulted / injected / skipped outcomes.
	FrameCall
	// FrameDown is a worker→kernel nested downcall made by an executing
	// handler: Name is the registered downcall name, Aux the scalar
	// argument, and ID echoes the FrameCall that is mid-execution. The
	// kernel side serves it inline and answers with FrameDownResult before
	// the handler's own completion is written.
	FrameDown
	// FrameDownResult answers a FrameDown: Aux is the downcall's scalar
	// result; a non-zero Status carries the error text in Name.
	FrameDownResult
	// FrameStateMap publishes the shm-backed shared-state area to the
	// worker: Aux packs offset<<32 | length, the offset 64-byte aligned
	// within the shared mapping. Sent before FrameDescRing; the worker
	// binds its handler-visible state cells over that window, so a
	// worker-side Store is immediately visible through the kernel side's
	// own mapping.
	FrameStateMap
)

func (k FrameKind) valid() bool { return k >= FrameSubmit && k <= FrameStateMap }

func (k FrameKind) String() string {
	switch k {
	case FrameSubmit:
		return "submit"
	case FrameComplete:
		return "complete"
	case FrameRingRegister:
		return "ring-register"
	case FrameRingRelease:
		return "ring-release"
	case FramePing:
		return "ping"
	case FramePong:
		return "pong"
	case FrameShutdown:
		return "shutdown"
	case FrameDescRing:
		return "desc-ring"
	case FrameTraceRing:
		return "trace-ring"
	case FrameCall:
		return "call"
	case FrameDown:
		return "down"
	case FrameDownResult:
		return "down-result"
	case FrameStateMap:
		return "state-map"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Frame is one message of the process-separated XPC wire protocol.
type Frame struct {
	Kind FrameKind
	// ID sequences frames; a FrameComplete echoes the ID it acknowledges.
	ID uint64
	// Up is the crossing direction for submit frames (true = upcall).
	Up bool
	// Inject marks a FrameCall whose body must not execute: the kernel
	// side's fault injector elected this call, and the worker acknowledges
	// it as an injected fault instead of dispatching the handler.
	Inject bool
	// Name is the entry-point name for submit frames, or an error message
	// on a non-zero-Status completion.
	Name string
	// Slot references a payload resident in the shared ring (zero value:
	// no slot, see SlotDescriptor.Valid).
	Slot SlotDescriptor
	// Data is the copy-path payload (nil when the payload rides the ring).
	Data []byte
	// Status is the completion outcome: 0 ok, non-zero a worker-side error.
	Status uint32
	// Aux is kind-specific: payload checksum on FrameComplete, packed ring
	// geometry (slots<<32 | slotSize) on FrameRingRegister.
	Aux uint64
	// Lane identifies the submission lane a descriptor-ring frame rides: a
	// FrameComplete echoes the lane of the submit it acknowledges (so
	// completions demux without ordering across lanes), and FrameDescRing
	// carries the lane count being carved. ID sequences are per-lane, so
	// (Lane, ID) is the unique key of an in-flight ring crossing.
	Lane uint32
}

// Wire-format limits. Decoders reject frames exceeding them before
// allocating, so a corrupt or hostile length prefix cannot balloon memory.
const (
	// MaxFrameName bounds the entry-point / error string.
	MaxFrameName = 255
	// MaxFramePayload bounds a copy-path payload (comfortably above the
	// largest slot size a ring would otherwise carry).
	MaxFramePayload = 1 << 20
	// frameFixedSize is the encoded size of the fixed fields: kind(1) +
	// flags(1) + nameLen(2) + id(8) + status(4) + aux(8) + lane(4) +
	// slot(12) + dataLen(4).
	frameFixedSize = 44
	// MaxFrameSize bounds one whole frame on the wire (length prefix
	// excluded).
	MaxFrameSize = frameFixedSize + MaxFrameName + 3 + MaxFramePayload + 3
)

// Frame codec errors.
var (
	// ErrFrameTooBig rejects encoding a frame whose name or payload
	// exceeds the wire limits.
	ErrFrameTooBig = errors.New("xdr: frame exceeds wire limits")
	// ErrFrameCorrupt rejects a frame that is structurally invalid:
	// unknown kind, reserved flag bits, or a length prefix that does not
	// match its contents. Truncated input surfaces as ErrShortBuffer.
	ErrFrameCorrupt = errors.New("xdr: corrupt frame")
)

const (
	frameFlagUp     = 0x01
	frameFlagInject = 0x02
)

// FrameWireSize reports the exact bytes AppendFrame would emit for f,
// including the 4-byte length prefix. Callers encoding into fixed-size
// descriptor-ring slots use it to prove the encode cannot spill (and so
// cannot reallocate) before touching the slot.
func FrameWireSize(f Frame) int {
	return 4 + frameFixedSize + len(f.Name) + pad(len(f.Name)) + len(f.Data) + pad(len(f.Data))
}

// AppendFrame encodes f with a length prefix, appending to dst. The name
// and payload bytes are copied into the output, so the frame does not alias
// caller memory once encoded — mutating the source slice afterwards cannot
// corrupt a frame already on (or headed for) the wire.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if !f.Kind.valid() {
		return dst, fmt.Errorf("%w: kind %d", ErrFrameCorrupt, f.Kind)
	}
	if len(f.Name) > MaxFrameName || len(f.Data) > MaxFramePayload {
		return dst, fmt.Errorf("%w: name %dB, payload %dB", ErrFrameTooBig, len(f.Name), len(f.Data))
	}
	var flags byte
	if f.Up {
		flags |= frameFlagUp
	}
	if f.Inject {
		flags |= frameFlagInject
	}
	body := frameFixedSize + len(f.Name) + pad(len(f.Name)) + len(f.Data) + pad(len(f.Data))
	e := Encoder{buf: dst}
	e.PutUint32(uint32(body))
	e.buf = append(e.buf, byte(f.Kind), flags, byte(len(f.Name)>>8), byte(len(f.Name)))
	e.PutUint64(f.ID)
	e.PutUint32(f.Status)
	e.PutUint64(f.Aux)
	e.PutUint32(f.Lane)
	e.PutSlotDescriptor(f.Slot)
	e.PutUint32(uint32(len(f.Data)))
	e.PutFixedString(f.Name)
	e.PutFixedOpaque(f.Data)
	return e.buf, nil
}

// DecodeFrame decodes one length-prefixed frame from the start of data,
// returning the frame and the bytes consumed. The decode is strict — the
// length prefix must match the frame's contents exactly, unknown kinds and
// reserved flag bits are rejected — and never panics on truncated or corrupt
// input. Name and Data are copied out of the input buffer.
func DecodeFrame(data []byte) (Frame, int, error) {
	d := Decoder{buf: data}
	body, err := d.Uint32()
	if err != nil {
		return Frame{}, 0, err
	}
	if body > MaxFrameSize {
		return Frame{}, 0, fmt.Errorf("%w: length %d exceeds max %d", ErrFrameCorrupt, body, MaxFrameSize)
	}
	if int(body) < frameFixedSize {
		return Frame{}, 0, fmt.Errorf("%w: length %d below fixed size %d", ErrFrameCorrupt, body, frameFixedSize)
	}
	if d.Remaining() < int(body) {
		return Frame{}, 0, fmt.Errorf("%w: frame needs %d bytes, have %d", ErrShortBuffer, body, d.Remaining())
	}
	hdr, _ := d.take(4)
	var f Frame
	f.Kind = FrameKind(hdr[0])
	if !f.Kind.valid() {
		return Frame{}, 0, fmt.Errorf("%w: kind %d", ErrFrameCorrupt, hdr[0])
	}
	flags := hdr[1]
	if flags&^byte(frameFlagUp|frameFlagInject) != 0 {
		return Frame{}, 0, fmt.Errorf("%w: reserved flag bits %#x", ErrFrameCorrupt, flags)
	}
	f.Up = flags&frameFlagUp != 0
	f.Inject = flags&frameFlagInject != 0
	nameLen := int(hdr[2])<<8 | int(hdr[3])
	if nameLen > MaxFrameName {
		return Frame{}, 0, fmt.Errorf("%w: name length %d", ErrFrameCorrupt, nameLen)
	}
	if f.ID, err = d.Uint64(); err != nil {
		return Frame{}, 0, err
	}
	if f.Status, err = d.Uint32(); err != nil {
		return Frame{}, 0, err
	}
	if f.Aux, err = d.Uint64(); err != nil {
		return Frame{}, 0, err
	}
	if f.Lane, err = d.Uint32(); err != nil {
		return Frame{}, 0, err
	}
	if f.Slot, err = d.SlotDescriptor(); err != nil {
		return Frame{}, 0, err
	}
	dataLen, err := d.Uint32()
	if err != nil {
		return Frame{}, 0, err
	}
	if dataLen > MaxFramePayload {
		return Frame{}, 0, fmt.Errorf("%w: payload length %d", ErrFrameCorrupt, dataLen)
	}
	want := frameFixedSize + nameLen + pad(nameLen) + int(dataLen) + pad(int(dataLen))
	if int(body) != want {
		return Frame{}, 0, fmt.Errorf("%w: length prefix %d, contents need %d", ErrFrameCorrupt, body, want)
	}
	name, err := d.FixedOpaque(nameLen)
	if err != nil {
		return Frame{}, 0, err
	}
	f.Name = string(name)
	if f.Data, err = d.FixedOpaque(int(dataLen)); err != nil {
		return Frame{}, 0, err
	}
	if dataLen == 0 {
		f.Data = nil
	}
	return f, d.off, nil
}
