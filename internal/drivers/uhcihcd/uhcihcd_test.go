package uhcihcd

import (
	"testing"
	"time"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/uhcihw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/ktime"
	"decafdrivers/internal/kusb"
	"decafdrivers/internal/xpc"
)

type rig struct {
	clock *ktime.Clock
	kern  *kernel.Kernel
	usb   *kusb.Core
	dev   *uhcihw.Device
	flash *uhcihw.FlashDrive
	drv   *Driver
}

func newRig(t *testing.T, mode xpc.Mode) *rig {
	t.Helper()
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 8<<20)
	kern := kernel.New(clock, bus)
	usb := kusb.New(kern)
	dev := uhcihw.New(bus, 10, 0xE000)
	flash := &uhcihw.FlashDrive{}
	dev.AttachPeripheral(0, flash)
	drv := New(kern, usb, dev, 0xE000, Config{Mode: mode, IRQ: 10})
	return &rig{clock: clock, kern: kern, usb: usb, dev: dev, flash: flash, drv: drv}
}

func TestInitConfiguresController(t *testing.T) {
	for _, mode := range []xpc.Mode{xpc.ModeNative, xpc.ModeDecaf} {
		r := newRig(t, mode)
		if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
			t.Fatal(err)
		}
		if !r.drv.State.Running {
			t.Fatalf("%v: controller not running", mode)
		}
		if r.drv.State.Port[0]&uhcihw.PortEnable == 0 {
			t.Fatalf("%v: port 0 not enabled (%#x)", mode, r.drv.State.Port[0])
		}
		if _, ok := r.usb.HCDByName("uhci-hcd"); !ok {
			t.Fatalf("%v: HCD not registered", mode)
		}
	}
}

func TestDecafInitCrossings(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	rep, err := r.kern.LoadModule(r.drv.Module())
	if err != nil {
		t.Fatal(err)
	}
	c := r.drv.Runtime().Counters()
	// Paper Table 3: 49 crossings for uhci-hcd initialization.
	if c.Trips() < 15 || c.Trips() > 80 {
		t.Fatalf("init crossings = %d, want ~15-80 (paper: 49)", c.Trips())
	}
	if rep.InitLatency < time.Second {
		t.Fatalf("decaf init latency = %v (paper: 2.67s)", rep.InitLatency)
	}
}

func TestBulkOutTransfer(t *testing.T) {
	for _, mode := range []xpc.Mode{xpc.ModeNative, xpc.ModeDecaf} {
		r := newRig(t, mode)
		if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
			t.Fatal(err)
		}
		ctx := r.kern.NewContext("tar")
		data := make([]byte, 1024) // 16 packets
		done := false
		urb := &kusb.URB{Endpoint: 2, Dir: kusb.DirOut, Data: data,
			Complete: func(u *kusb.URB) { done = true }}
		if err := r.usb.SubmitURB(ctx, "uhci-hcd", urb); err != nil {
			t.Fatalf("%v: submit: %v", mode, err)
		}
		// 16 packets at 18 TDs/frame completes within one frame.
		r.clock.Advance(2 * time.Millisecond)
		if !done {
			t.Fatalf("%v: URB not completed", mode)
		}
		if urb.Status != 0 || urb.ActualLength != 1024 {
			t.Fatalf("%v: status=%d actual=%d", mode, urb.Status, urb.ActualLength)
		}
		if r.flash.Written() != 1024 {
			t.Fatalf("%v: flash stored %d bytes", mode, r.flash.Written())
		}
	}
}

func TestBandwidthCappedPerFrame(t *testing.T) {
	r := newRig(t, xpc.ModeNative)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	ctx := r.kern.NewContext("tar")
	// 64 packets (4KB) at 18 TDs/frame needs 4 frames.
	done := false
	urb := &kusb.URB{Endpoint: 2, Dir: kusb.DirOut, Data: make([]byte, 4096),
		Complete: func(u *kusb.URB) { done = true }}
	if err := r.usb.SubmitURB(ctx, "uhci-hcd", urb); err != nil {
		t.Fatal(err)
	}
	r.clock.Advance(2 * time.Millisecond)
	if done {
		t.Fatal("4KB URB completed in under the USB 1.1 frame budget")
	}
	r.clock.Advance(3 * time.Millisecond)
	if !done {
		t.Fatal("URB not completed after sufficient frames")
	}
}

func TestPipeBusyRejected(t *testing.T) {
	r := newRig(t, xpc.ModeNative)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	ctx := r.kern.NewContext("t")
	u1 := &kusb.URB{Endpoint: 2, Dir: kusb.DirOut, Data: make([]byte, 64)}
	u2 := &kusb.URB{Endpoint: 2, Dir: kusb.DirOut, Data: make([]byte, 64)}
	if err := r.usb.SubmitURB(ctx, "uhci-hcd", u1); err != nil {
		t.Fatal(err)
	}
	if err := r.usb.SubmitURB(ctx, "uhci-hcd", u2); err == nil {
		t.Fatal("second URB accepted while pipe busy")
	}
}

func TestBulkInTransfer(t *testing.T) {
	r := newRig(t, xpc.ModeNative)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	ctx := r.kern.NewContext("t")
	buf := make([]byte, 64)
	var got int
	urb := &kusb.URB{Endpoint: 1, Dir: kusb.DirIn, Data: buf,
		Complete: func(u *kusb.URB) { got = u.ActualLength }}
	if err := r.usb.SubmitURB(ctx, "uhci-hcd", urb); err != nil {
		t.Fatal(err)
	}
	r.clock.Advance(2 * time.Millisecond)
	if got != 1 || buf[0] != 0 {
		t.Fatalf("IN transfer: actual=%d buf[0]=%d", got, buf[0])
	}
}

func TestExitStopsController(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	if err := r.kern.UnloadModule("uhci-hcd"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.usb.HCDByName("uhci-hcd"); ok {
		t.Fatal("HCD still registered after unload")
	}
	before := r.dev.Processed()
	r.clock.Advance(10 * time.Millisecond)
	if r.dev.Processed() != before {
		t.Fatal("controller still processing after unload")
	}
}
