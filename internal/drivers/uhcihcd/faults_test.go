package uhcihcd

import (
	"strings"
	"testing"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/kusb"
	"decafdrivers/internal/xpc"
)

func exhaustDMA(dma *hw.DMAMemory) {
	for _, chunk := range []int{1 << 20, 4096, 64} {
		for {
			if _, err := dma.Alloc(chunk, 1); err != nil {
				break
			}
		}
	}
}

// TestInitFailsCleanlyOnDMAExhaustion: the schedule allocation happens in a
// kernel entry point called from the decaf driver; its failure must surface
// as a module-init error, not a fault, and leave no handlers registered.
func TestInitFailsCleanlyOnDMAExhaustion(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	exhaustDMA(r.kern.Bus().DMA())
	_, err := r.kern.LoadModule(r.drv.Module())
	if err == nil {
		t.Fatal("init succeeded with exhausted DMA arena")
	}
	if !strings.Contains(err.Error(), "schedule") && !strings.Contains(err.Error(), "frame list") {
		t.Fatalf("unexpected failure: %v", err)
	}
	if len(r.kern.LoadedModules()) != 0 {
		t.Fatal("failed module left loaded")
	}
	if _, ok := r.usb.HCDByName("uhci-hcd"); ok {
		t.Fatal("HCD registered despite failed init")
	}
	// Interrupts must not be wired either: raising the line is harmless.
	r.kern.Bus().IRQ(10).Raise()
	if r.drv.State.IntrCount != 0 {
		t.Fatal("interrupt handler ran after failed init")
	}
}

// TestSubmitBeforeConfigureRejected guards the not-yet-configured window.
func TestSubmitBeforeConfigureRejected(t *testing.T) {
	r := newRig(t, xpc.ModeNative)
	ctx := r.kern.NewContext("t")
	if err := r.drv.Enqueue(ctx, mkURB(64)); err == nil {
		t.Fatal("enqueue accepted before configuration")
	}
}

func mkURB(n int) *kusb.URB {
	return &kusb.URB{Endpoint: 2, Dir: kusb.DirOut, Data: make([]byte, n)}
}
