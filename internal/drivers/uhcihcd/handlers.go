package uhcihcd

import (
	"time"

	"decafdrivers/internal/decaf/registry"
	"decafdrivers/internal/hw/uhcihw"
	"decafdrivers/internal/kernel"
)

// cellRunning mirrors the controller's run state into the shared state
// cells, readable from whichever process the suspend body executes in.
var cellRunning = registry.RegisterCell("uhci.running")

// suspendBodyCost is the user-level work of one suspend pass, excluding the
// controller-stop downcall.
const suspendBodyCost = 200 * time.Nanosecond

// uhci_suspend is the third converted function: stop the controller. The
// body is a registered handler so a process-separated transport executes it
// in the worker; the register write crosses back as a downcall.
//
//decaf:boundary
func init() {
	registry.Register("uhci_suspend", registry.Handler{
		Cost: suspendBodyCost,
		Down: true,
		Fn: func(c *registry.Ctx) error {
			if _, err := c.Downcall("uhci_stop", 0); err != nil {
				return err
			}
			c.State.Store(cellRunning, 0)
			return nil
		},
	})
}

// registerDowncalls installs the kernel-side targets the handler bodies
// name; per-Runtime, so each driver instance's handlers reach its device.
func (d *Driver) registerDowncalls() {
	d.rt.RegisterDowncall("uhci_stop", func(kctx *kernel.Context, _ uint64) (uint64, error) {
		d.ioWrite16(kctx, uhcihw.RegUSBCMD, 0)
		d.dev.Stop()
		// Mirror into both state copies: the kernel side reads
		// State.Running; the decaf copy must match the cell.
		d.State.Running = false
		d.DecafState.Running = false
		return 0, nil
	})
}

// ControllerRunning reads the run state from the shared state cells.
func (d *Driver) ControllerRunning() bool { return d.rt.SharedState().Load(cellRunning) != 0 }
