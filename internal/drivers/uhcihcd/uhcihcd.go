// Package uhcihcd is the Decaf conversion of the uhci-hcd USB 1.1 host
// controller driver. It is the paper's outlier (§4.1): "we were only able
// to convert 4% of the functions in uhci-hcd to Java because the driver
// contained several functions on the data path that could potentially call
// nearly any code in the driver." The nucleus therefore keeps almost
// everything — schedule management, TD bookkeeping, the interrupt handler —
// and the decaf driver holds only controller reset/configuration and
// suspend, reached during initialization.
package uhcihcd

import (
	"fmt"
	"time"

	"decafdrivers/internal/decaf"
	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/uhcihw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/kusb"
	"decafdrivers/internal/xdr"
	"decafdrivers/internal/xpc"
)

// HWException is the decaf driver's checked exception class.
const HWException = "UhciHWException"

// Per-TD CPU cost in the completion path (low-bandwidth USB 1.1: CPU
// utilization rounds to 0.1% in Table 3).
const tdCost = 60 * time.Nanosecond

// MaxPacket is the full-speed bulk packet size.
const MaxPacket = 64

// HCState is the controller state shared across domains.
type HCState struct {
	Name      string
	FrameBase uint32
	PortCount int32
	Port      [2]uint32
	Running   bool

	// Kernel-only bookkeeping.
	TDsRetired uint64
	IntrCount  uint64
}

// FieldMask is DriverSlicer's marshaling specification.
func FieldMask() xdr.FieldMask {
	return xdr.FieldMask{"HCState": {
		"Name": true, "FrameBase": true, "PortCount": true, "Port": true, "Running": true,
	}}
}

// Config configures a driver instance.
type Config struct {
	Mode xpc.Mode
	IRQ  int
}

// Driver is one bound uhci-hcd instance.
type Driver struct {
	kern    *kernel.Kernel
	usb     *kusb.Core
	dev     *uhcihw.Device
	rt      *xpc.Runtime
	helpers *decaf.Helpers
	irq     int
	ioBase  uint16

	State      *HCState
	DecafState *HCState

	lock      *kernel.SpinLock
	frameList hw.DMAAddr
	tdPool    hw.DMAAddr
	pending   *pendingURB
}

type pendingURB struct {
	urb     *kusb.URB
	firstTD hw.DMAAddr
	numTDs  int
}

// New binds the driver to a controller model.
func New(k *kernel.Kernel, usb *kusb.Core, dev *uhcihw.Device, ioBase uint16, cfg Config) *Driver {
	d := &Driver{
		kern: k, usb: usb, dev: dev, irq: cfg.IRQ, ioBase: ioBase,
		lock:  kernel.NewSpinLock("uhci.lock"),
		State: &HCState{PortCount: 2},
	}
	d.rt = xpc.NewRuntime(k, "uhci-hcd", cfg.Mode, FieldMask())
	d.rt.DisableIRQs = []int{cfg.IRQ}
	d.helpers = decaf.NewHelpers(d.rt, k.Bus())
	if cfg.Mode == xpc.ModeNative {
		d.DecafState = d.State
	} else {
		d.DecafState = &HCState{}
		if _, err := d.rt.Share(d.State, d.DecafState); err != nil {
			panic(fmt.Sprintf("uhci-hcd: share state: %v", err))
		}
	}
	d.registerDowncalls()
	return d
}

// Runtime exposes the XPC runtime.
func (d *Driver) Runtime() *xpc.Runtime { return d.rt }

// --- nucleus ---

func (d *Driver) outb(off uint16, v uint8)  { d.kern.Bus().Outb(d.ioBase+off, v) }
func (d *Driver) outw(off uint16, v uint16) { d.kern.Bus().Outw(d.ioBase+off, v) }
func (d *Driver) outl(off uint16, v uint32) { d.kern.Bus().Outl(d.ioBase+off, v) }
func (d *Driver) inw(off uint16) uint16     { return d.kern.Bus().Inw(d.ioBase + off) }

// ioWrite16/ioRead16 are the kernel entry points the decaf configuration
// code calls register-by-register (the source of the 49 init crossings).
func (d *Driver) ioWrite16(ctx *kernel.Context, off uint16, v uint16) { d.outw(off, v) }
func (d *Driver) ioRead16(ctx *kernel.Context, off uint16) uint16     { return d.inw(off) }

// allocSchedule allocates the frame list and TD pool (kernel entry point).
func (d *Driver) allocSchedule(ctx *kernel.Context) error {
	dma := d.kern.Bus().DMA()
	fl, err := dma.Alloc(uhcihw.FrameListEntries*4, 4096)
	if err != nil {
		return fmt.Errorf("uhci-hcd: frame list: %w", err)
	}
	pool, err := dma.Alloc(256*uhcihw.TDSize+256*MaxPacket, 16)
	if err != nil {
		_ = dma.Free(fl)
		return fmt.Errorf("uhci-hcd: td pool: %w", err)
	}
	d.frameList, d.tdPool = fl, pool
	for i := 0; i < uhcihw.FrameListEntries; i++ {
		dma.Write32(fl+hw.DMAAddr(4*i), uhcihw.LinkTerminate)
	}
	d.State.FrameBase = uint32(fl)
	return nil
}

func (d *Driver) freeSchedule(ctx *kernel.Context) {
	dma := d.kern.Bus().DMA()
	if d.frameList != 0 {
		_ = dma.Free(d.frameList)
		d.frameList = 0
	}
	if d.tdPool != 0 {
		_ = dma.Free(d.tdPool)
		d.tdPool = 0
	}
}

// intr is the interrupt handler, a critical root: it completes retired
// URBs.
func (d *Driver) intr(ctx *kernel.Context, irq int, dev any) {
	sts := d.inw(uhcihw.RegUSBSTS)
	if sts&uhcihw.StsUSBInt == 0 {
		return
	}
	d.outw(uhcihw.RegUSBSTS, uhcihw.StsUSBInt) // ack
	st := d.State
	st.IntrCount++

	d.lock.Lock(ctx)
	p := d.pending
	var done bool
	if p != nil {
		done = true
		dma := d.kern.Bus().DMA()
		actual := 0
		for i := 0; i < p.numTDs; i++ {
			status := dma.Read32(p.firstTD + hw.DMAAddr(i*uhcihw.TDSize) + 4)
			if status&uhcihw.TDActive != 0 {
				done = false
				break
			}
			actual += int(status&0x7FF) + 1
			ctx.Charge(tdCost)
		}
		if done {
			st.TDsRetired += uint64(p.numTDs)
			p.urb.Status = 0
			p.urb.ActualLength = actual
			d.pending = nil
			d.linkAllFrames(uhcihw.LinkTerminate)
		}
	}
	d.lock.Unlock(ctx)
	if done && p != nil && p.urb.Complete != nil {
		p.urb.Complete(p.urb)
	}
}

// Enqueue implements kusb.HCD in the nucleus: build a TD chain for the URB
// and link it into frame-list entry 0. One URB is outstanding at a time (a
// serialized bulk pipe), which matches the tar workload's sequential
// submission.
func (d *Driver) Enqueue(ctx *kernel.Context, urb *kusb.URB) error {
	d.lock.Lock(ctx)
	if d.pending != nil {
		d.lock.Unlock(ctx)
		return fmt.Errorf("uhci-hcd: pipe busy")
	}
	if d.frameList == 0 {
		d.lock.Unlock(ctx)
		return fmt.Errorf("uhci-hcd: controller not configured")
	}
	dma := d.kern.Bus().DMA()
	n := (len(urb.Data) + MaxPacket - 1) / MaxPacket
	if urb.Dir == kusb.DirIn {
		n = 1
	}
	if n == 0 || n > 256 {
		d.lock.Unlock(ctx)
		return fmt.Errorf("uhci-hcd: URB of %d bytes unsupported", len(urb.Data))
	}
	pid := uint32(uhcihw.PIDOut)
	if urb.Dir == kusb.DirIn {
		pid = uhcihw.PIDIn
	}
	for i := 0; i < n; i++ {
		td := d.tdPool + hw.DMAAddr(i*uhcihw.TDSize)
		buf := d.tdPool + hw.DMAAddr(256*uhcihw.TDSize+i*MaxPacket)
		chunk := urb.Data[i*MaxPacket:]
		if len(chunk) > MaxPacket {
			chunk = chunk[:MaxPacket]
		}
		if urb.Dir == kusb.DirOut {
			dma.Write(buf, chunk)
		}
		link := uint32(td) + uhcihw.TDSize
		status := uint32(uhcihw.TDActive)
		if i == n-1 {
			link = uhcihw.LinkTerminate
			status |= uhcihw.TDIOC
		}
		token := pid | uint32(urb.Endpoint&0xF)<<15 | uint32(len(chunk)-1)<<21
		dma.Write32(td, link)
		dma.Write32(td+4, status)
		dma.Write32(td+8, token)
		dma.Write32(td+12, uint32(buf))
	}
	d.pending = &pendingURB{urb: urb, firstTD: d.tdPool, numTDs: n}
	// Link the chain into every frame-list entry, as real UHCI drivers link
	// the bulk queue head into all frames so it is serviced each
	// millisecond regardless of the current frame number.
	d.linkAllFrames(uint32(d.tdPool))
	d.lock.Unlock(ctx)
	return nil
}

// linkAllFrames writes v into every frame-list entry.
func (d *Driver) linkAllFrames(v uint32) {
	dma := d.kern.Bus().DMA()
	for i := 0; i < uhcihw.FrameListEntries; i++ {
		dma.Write32(d.frameList+hw.DMAAddr(4*i), v)
	}
}

// --- decaf driver (the 3 converted functions: reset, configure, suspend) ---

// resetHCDecaf performs the controller global reset through register-level
// downcalls.
//
//decaf:boundary
func (d *Driver) resetHCDecaf(uctx *kernel.Context) {
	for _, w := range []struct {
		off uint16
		val uint16
	}{
		{uhcihw.RegUSBCMD, uhcihw.CmdGReset},
		{uhcihw.RegUSBCMD, 0},
		{uhcihw.RegUSBCMD, uhcihw.CmdHCReset},
		{uhcihw.RegUSBINTR, 0},
		{uhcihw.RegUSBSTS, 0xFFFF},
	} {
		w := w
		if err := d.rt.Downcall(uctx, "uhci_io_write", func(kctx *kernel.Context) error {
			d.ioWrite16(kctx, w.off, w.val)
			return nil
		}); err != nil {
			decaf.ThrowCause(HWException, err, "reset write")
		}
	}
	d.helpers.Msleep(uctx, 50) // global reset hold time
	var sts uint16
	_ = d.rt.Downcall(uctx, "uhci_io_read", func(kctx *kernel.Context) error {
		sts = d.ioRead16(kctx, uhcihw.RegUSBSTS)
		return nil
	})
	if sts&uhcihw.StsHalted == 0 {
		decaf.Throw(HWException, "controller did not halt after reset: sts=%#x", sts)
	}
}

// configureHCDecaf programs the frame list, start-of-frame timing, and
// interrupt enables, then resets and enables each root-hub port.
//
//decaf:boundary
func (d *Driver) configureHCDecaf(uctx *kernel.Context) {
	if err := d.rt.Downcall(uctx, "uhci_alloc_schedule", func(kctx *kernel.Context) error {
		return d.allocSchedule(kctx)
	}, d.State); err != nil {
		decaf.ThrowCause(HWException, err, "schedule allocation")
	}
	st := d.DecafState

	// Controller identification and start-of-frame calibration: version
	// read, vendor probe, and four SOFMOD trim writes, each a kernel entry.
	for i := 0; i < 4; i++ {
		_ = d.rt.Downcall(uctx, "uhci_read_version", func(kctx *kernel.Context) error {
			_ = d.ioRead16(kctx, uhcihw.RegFRNUM)
			return nil
		})
	}
	for i := 0; i < 4; i++ {
		_ = d.rt.Downcall(uctx, "uhci_sof_trim", func(kctx *kernel.Context) error {
			d.outb(uhcihw.RegSOFMOD, 64)
			return nil
		})
	}
	writes := []struct {
		name string
		fn   func(kctx *kernel.Context)
	}{
		{"flbaseadd", func(k *kernel.Context) { d.outl(uhcihw.RegFLBASEADD, st.FrameBase) }},
		{"frnum", func(k *kernel.Context) { d.ioWrite16(k, uhcihw.RegFRNUM, 0) }},
		{"sofmod", func(k *kernel.Context) { d.outb(uhcihw.RegSOFMOD, 64) }},
		{"usbintr", func(k *kernel.Context) { d.ioWrite16(k, uhcihw.RegUSBINTR, 0xF) }},
	}
	for _, w := range writes {
		w := w
		_ = d.rt.Downcall(uctx, "uhci_io_write:"+w.name, func(kctx *kernel.Context) error {
			w.fn(kctx)
			return nil
		})
	}

	// Legacy-support handoff (the LEGSUP dance every UHCI bring-up
	// performs): four more register-level kernel entries.
	for i := 0; i < 4; i++ {
		_ = d.rt.Downcall(uctx, "uhci_legsup_write", func(kctx *kernel.Context) error {
			d.ioWrite16(kctx, uhcihw.RegUSBSTS, 0) // ack/handoff write
			return nil
		})
	}

	// Root-hub ports: reset, poll until reset latches, clear reset, verify
	// enable. The polling loop is why uhci-hcd's initialization makes ~49
	// crossings (Table 3): port state lives behind kernel entry points.
	for port := 0; port < int(st.PortCount); port++ {
		reg := uint16(uhcihw.RegPORTSC1 + 2*port)
		// Baseline connect status before reset.
		_ = d.rt.Downcall(uctx, "uhci_port_status", func(kctx *kernel.Context) error {
			_ = d.ioRead16(kctx, reg)
			return nil
		})
		_ = d.rt.Downcall(uctx, "uhci_port_reset", func(kctx *kernel.Context) error {
			d.ioWrite16(kctx, reg, uhcihw.PortReset)
			return nil
		})
		// The UHCI spec requires a 10 ms reset hold; the driver polls the
		// port while holding, each poll a kernel entry.
		for poll := 0; poll < 4; poll++ {
			_ = d.rt.Downcall(uctx, "uhci_port_status", func(kctx *kernel.Context) error {
				_ = d.ioRead16(kctx, reg)
				return nil
			})
			d.helpers.Msleep(uctx, 5)
		}
		d.helpers.Msleep(uctx, 30)
		_ = d.rt.Downcall(uctx, "uhci_port_reset_clear", func(kctx *kernel.Context) error {
			d.ioWrite16(kctx, reg, 0)
			return nil
		})
		// Verify the port came up enabled, then re-read the final state.
		var sc uint16
		_ = d.rt.Downcall(uctx, "uhci_port_enable_check", func(kctx *kernel.Context) error {
			sc = d.ioRead16(kctx, reg)
			return nil
		})
		_ = d.rt.Downcall(uctx, "uhci_port_status", func(kctx *kernel.Context) error {
			sc = d.ioRead16(kctx, reg)
			return nil
		})
		st.Port[port] = uint32(sc)
	}

	// Frame-number reset verification and a final controller status read.
	_ = d.rt.Downcall(uctx, "uhci_frnum_check", func(kctx *kernel.Context) error {
		_ = d.ioRead16(kctx, uhcihw.RegFRNUM)
		return nil
	})
	_ = d.rt.Downcall(uctx, "uhci_status_check", func(kctx *kernel.Context) error {
		_ = d.ioRead16(kctx, uhcihw.RegUSBSTS)
		return nil
	})

	// Start the controller.
	_ = d.rt.Downcall(uctx, "uhci_run", func(kctx *kernel.Context) error {
		d.ioWrite16(kctx, uhcihw.RegUSBCMD, uhcihw.CmdRS)
		return nil
	})
	st.Running = true
	d.helpers.Msleep(uctx, 1000) // device enumeration settle, per Table 3's 1.3s native init
}

// The suspend body lives in the handler table (handlers.go) so a
// process-separated transport executes it in the worker process.

// --- module glue ---

// Module adapts the driver to the module loader.
func (d *Driver) Module() kernel.Module { return (*uhciModule)(d) }

type uhciModule Driver

// ModuleName implements kernel.Module.
func (m *uhciModule) ModuleName() string { return "uhci-hcd" }

// Init resets and configures the controller through the decaf driver, then
// registers with the USB core.
func (m *uhciModule) Init(ctx *kernel.Context) error {
	d := (*Driver)(m)
	err := d.rt.Upcall(ctx, "uhci_start", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() {
			d.resetHCDecaf(uctx)
			d.configureHCDecaf(uctx)
		}))
	}, d.State)
	if err != nil {
		return fmt.Errorf("uhci-hcd: start: %w", err)
	}
	// Mirror the started controller into the shared cell the suspend
	// handler clears.
	d.rt.SharedState().Store(cellRunning, 1)
	if err := d.kern.RequestIRQ(d.irq, "uhci-hcd", d.intr, d.State); err != nil {
		return err
	}
	return d.usb.RegisterHCD("uhci-hcd", d)
}

// Exit suspends the controller and unregisters.
func (m *uhciModule) Exit(ctx *kernel.Context) {
	d := (*Driver)(m)
	_ = d.rt.UpcallHandler(ctx, "uhci_suspend")
	_ = d.kern.FreeIRQ(d.irq, "uhci-hcd")
	_ = d.usb.UnregisterHCD("uhci-hcd")
	d.freeSchedule(ctx)
	if d.rt.Mode == xpc.ModeDecaf {
		d.rt.Unshare(d.State)
	}
}
