package ens1371

import (
	"decafdrivers/internal/decaf"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/recovery"
	"decafdrivers/internal/xpc"
)

// EnableRecovery attaches the shadow-driver state journal and arms the
// driver for supervision: the probe's hardware configuration and the PCM
// stream state (open, hw_params, trigger) are journaled for replay, and the
// PCM ops act as the kernel-facing proxy during an outage (journal intent,
// defer the crossing, report success — slow, not dead). Call before
// LoadModule so the probe is journaled.
func (d *Driver) EnableRecovery(j *recovery.StateJournal) {
	d.journal = j
}

// DeferredOps reports PCM operations absorbed by the recovery proxy
// (journaled and deferred to replay instead of crossing).
func (d *Driver) DeferredOps() uint64 { return d.deferredOps }

// journalProbe records the device-level half of probe (SRC RAM, codec,
// mixer registers). Kernel-object registrations — controls, the card, the
// IRQ — persist across a restart and are not replayed.
func (d *Driver) journalProbe() {
	if d.journal == nil {
		return
	}
	d.journal.Record(recovery.Entry{
		Key:  "probe",
		Name: "snd_ens1371_probe(config)",
		Replay: func(ctx *kernel.Context) error {
			return d.rt.Upcall(ctx, "snd_ens1371_probe", func(uctx *kernel.Context) error {
				return decaf.ToError(decaf.Try(func() {
					d.initChipConfig(uctx)
					d.helpers.Msleep(uctx, 750) // codec ready wait, as at probe
				}))
			}, d.Chip)
		},
	})
}

// journalPCMOpen records the playback buffer allocation.
func (d *Driver) journalPCMOpen() {
	if d.journal == nil {
		return
	}
	d.journal.Record(recovery.Entry{
		Key:  "pcm/open",
		Name: "snd_ens1371_playback_open",
		Replay: func(ctx *kernel.Context) error {
			if d.buf != 0 {
				return nil // buffer survived (kernel-side state)
			}
			return d.openUpcall(ctx)
		},
	})
}

// journalHWParams records the stream configuration (rate, channels, period).
func (d *Driver) journalHWParams(rate, channels, periodFrames int) {
	if d.journal == nil {
		return
	}
	d.journal.Record(recovery.Entry{
		Key:  "pcm/params",
		Name: "snd_ens1371_hw_params",
		Replay: func(ctx *kernel.Context) error {
			return d.hwParamsUpcall(ctx, rate, channels, periodFrames)
		},
	})
}

// journalTrigger records the DAC2 engine state.
func (d *Driver) journalTrigger(start bool) {
	if d.journal == nil {
		return
	}
	d.journal.Record(recovery.Entry{
		Key:  "pcm/trigger",
		Name: "snd_ens1371_trigger",
		Replay: func(ctx *kernel.Context) error {
			return d.triggerUpcall(ctx, start)
		},
	})
}

// unjournalStream drops the stream's journal entries on close.
func (d *Driver) unjournalStream() {
	if d.journal == nil {
		return
	}
	d.journal.Remove("pcm/trigger")
	d.journal.Remove("pcm/params")
	d.journal.Remove("pcm/open")
}

// RecoveryName implements recovery.Target.
func (d *Driver) RecoveryName() string { return "ens1371" }

// BeginOutage implements recovery.Target: PCM ops defer to the journal
// until resume. Idempotent for retried restarts.
func (d *Driver) BeginOutage(ctx *kernel.Context) {
	d.recovering = true
}

// TeardownForRecovery implements recovery.Target: silence the engine and
// drain in-flight crossings. The playback buffer, IRQ registration, card and
// mixer controls are kernel-side state and survive; the journal replay
// reprograms the device.
func (d *Driver) TeardownForRecovery(ctx *kernel.Context) error {
	d.stopDAC2(ctx)
	return d.rt.DrainCrossings(ctx)
}

// ResetDecafState implements recovery.Target: a fresh shared chip copy.
func (d *Driver) ResetDecafState(ctx *kernel.Context) error {
	if d.rt.Mode != xpc.ModeDecaf {
		return nil
	}
	d.rt.Unshare(d.Chip)
	d.DecafChip = &Chip{}
	if _, err := d.rt.Share(d.Chip, d.DecafChip); err != nil {
		return err
	}
	return nil
}

// ResumeFromRecovery implements recovery.Target: the deferred-op count is
// the held work the proxy absorbed (the journal replay already applied it).
func (d *Driver) ResumeFromRecovery(ctx *kernel.Context) (replayed, dropped uint64) {
	d.recovering = false
	n := d.deferredOps
	d.deferredOps = 0
	return n, 0
}

// FailStop implements recovery.Target: the engine goes silent and every
// further PCM op returns an explicit error — the card is dead, not slow,
// and callers learn it.
func (d *Driver) FailStop(ctx *kernel.Context) {
	d.failed = true
	d.stopDAC2(ctx)
}
