// Package ens1371 is the Decaf conversion of the Ensoniq AudioPCI sound
// driver. It has the paper's cleanest split (§4.1, Table 2): no driver
// library at all — every user-level function is in the decaf driver — and
// only the interrupt handler and playback data path remain in the nucleus.
// Its initialization is the costliest of the five (6.34 s, 237 crossings in
// Table 3) because probing walks the sample-rate-converter RAM and the
// AC'97 codec register file through kernel entry points one register at a
// time.
package ens1371

import (
	"errors"
	"fmt"
	"time"

	"decafdrivers/internal/decaf"
	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/es1371hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/ksound"
	"decafdrivers/internal/recovery"
	"decafdrivers/internal/xdr"
	"decafdrivers/internal/xpc"
)

// HWException is the decaf driver's checked exception class.
const HWException = "Ens1371HWException"

// Data-path CPU costs: audio is low bandwidth, so utilization rounds to
// zero as in Table 3.
const (
	periodIntrCost = 3 * time.Microsecond
	copyCostPerKB  = 1 * time.Microsecond
)

// BufferFrames is the playback DMA buffer size in frames.
const BufferFrames = 16 * 1024

// Chip is the ensoniq-chip structure shared across domains.
type Chip struct {
	Name        string
	CodecVendor uint32
	Rate        int32
	Channels    int32
	PeriodLen   int32
	Running     bool
	Periods     uint64
	MixerCtls   int32

	// Kernel-only state.
	HWPos     uint32
	IntrCount uint64
}

// FieldMask is DriverSlicer's marshaling specification for the chip.
func FieldMask() xdr.FieldMask {
	return xdr.FieldMask{"Chip": {
		"Name": true, "CodecVendor": true, "Rate": true, "Channels": true,
		"PeriodLen": true, "Running": true, "Periods": true, "MixerCtls": true,
	}}
}

// Config configures a driver instance.
type Config struct {
	Mode xpc.Mode
	IRQ  int
}

// Driver is one bound ens1371 instance.
type Driver struct {
	kern    *kernel.Kernel
	snd     *ksound.Subsystem
	dev     *es1371hw.Device
	rt      *xpc.Runtime
	helpers *decaf.Helpers
	irq     int
	ioBase  uint16

	Chip      *Chip
	DecafChip *Chip

	card   *ksound.Card
	buf    hw.DMAAddr
	stream *ksound.Substream

	// Recovery supervision state (EnableRecovery): during an outage the PCM
	// ops act as the kernel-facing proxy — they journal their intent and
	// defer the crossing to the journal replay instead of reaching the
	// suspect decaf driver, so the card looks slow, not dead. deferredOps
	// counts ops absorbed that way. failed marks a fail-stopped device:
	// every PCM op then errors explicitly instead of silently deferring.
	journal     *recovery.StateJournal
	recovering  bool
	failed      bool
	deferredOps uint64
}

// errFailStopped is what every PCM op returns once the restart budget is
// exhausted: the card is explicitly dead, not slow.
var errFailStopped = errors.New("ens1371: device fail-stopped (recovery budget exhausted)")

// proxyOp runs one kernel-facing PCM op under the recovery proxy. A
// fail-stopped device errors explicitly. During an outage the op defers:
// deferred runs (journal the intent, apply kernel-side effects) and the
// caller sees success — slow, not dead. Otherwise the op crosses; on
// success record runs (journal the established state), and a contained
// decaf fault under supervision is absorbed the same way as an outage (the
// supervisor owns the restart; the journal replay applies the intent).
func (d *Driver) proxyOp(record, deferred func(), op func() error) error {
	if d.failed {
		return errFailStopped
	}
	if d.recovering {
		if deferred != nil {
			deferred()
		}
		d.deferredOps++
		return nil
	}
	err := op()
	if err == nil {
		if record != nil {
			record()
		}
		return nil
	}
	if d.journal != nil && xpc.IsUserFault(err) {
		if deferred != nil {
			deferred()
		}
		d.deferredOps++
		return nil
	}
	return err
}

// New binds the driver to a device model.
func New(k *kernel.Kernel, snd *ksound.Subsystem, dev *es1371hw.Device, ioBase uint16, cfg Config) *Driver {
	d := &Driver{
		kern: k, snd: snd, dev: dev, irq: cfg.IRQ, ioBase: ioBase,
		Chip: &Chip{},
	}
	d.rt = xpc.NewRuntime(k, "ens1371", cfg.Mode, FieldMask())
	d.rt.DisableIRQs = []int{cfg.IRQ}
	d.helpers = decaf.NewHelpers(d.rt, k.Bus())
	if cfg.Mode == xpc.ModeNative {
		d.DecafChip = d.Chip
	} else {
		d.DecafChip = &Chip{}
		if _, err := d.rt.Share(d.Chip, d.DecafChip); err != nil {
			panic(fmt.Sprintf("ens1371: share chip: %v", err))
		}
	}
	d.registerDowncalls()
	return d
}

// Runtime exposes the XPC runtime.
func (d *Driver) Runtime() *xpc.Runtime { return d.rt }

// Card returns the registered sound card (after module init).
func (d *Driver) Card() *ksound.Card { return d.card }

// --- nucleus ---

func (d *Driver) outl(off uint16, v uint32) { d.kern.Bus().Outl(d.ioBase+off, v) }
func (d *Driver) inl(off uint16) uint32     { return d.kern.Bus().Inl(d.ioBase + off) }

// codecWrite is a kernel entry point: AC'97 port access is serialized in
// the kernel.
func (d *Driver) codecWrite(ctx *kernel.Context, addr uint32, val uint16) {
	d.outl(es1371hw.RegCodec, addr<<16|uint32(val))
	ctx.UDelay(2)
}

// codecRead is codecWrite's read twin; it returns -EIO when the codec does
// not come ready.
func (d *Driver) codecRead(ctx *kernel.Context, addr uint32) (uint16, int) {
	d.outl(es1371hw.RegCodec, addr<<16|es1371hw.CodecReadRequest)
	ctx.UDelay(2)
	v := d.inl(es1371hw.RegCodec)
	if v&es1371hw.CodecReady == 0 {
		return 0, -5
	}
	return uint16(v), 0
}

// srcWrite programs one sample-rate-converter RAM entry (kernel entry
// point).
func (d *Driver) srcWrite(ctx *kernel.Context, addr uint32, val uint16) {
	d.outl(es1371hw.RegSRC, addr<<25|es1371hw.SRCWE|uint32(val))
	ctx.UDelay(1)
}

// intr is the interrupt handler, a critical root.
func (d *Driver) intr(ctx *kernel.Context, irq int, dev any) {
	status := d.inl(es1371hw.RegStatus)
	if status&es1371hw.StatusIntr == 0 {
		return
	}
	if status&es1371hw.StatusDAC2 != 0 {
		d.outl(es1371hw.RegStatus, es1371hw.StatusDAC2) // ack
		c := d.Chip
		c.IntrCount++
		c.HWPos = d.dev.Position()
		c.Periods++
		ctx.Charge(periodIntrCost)
		if d.stream != nil {
			d.stream.PeriodElapsed()
		}
	}
}

// allocBuffer allocates the playback DMA buffer (kernel entry point).
func (d *Driver) allocBuffer(ctx *kernel.Context) error {
	b, err := d.kern.Bus().DMA().Alloc(BufferFrames*4, 4096)
	if err != nil {
		return fmt.Errorf("ens1371: playback buffer: %w", err)
	}
	d.buf = b
	return nil
}

func (d *Driver) freeBuffer(ctx *kernel.Context) {
	if d.buf != 0 {
		_ = d.kern.Bus().DMA().Free(d.buf)
		d.buf = 0
	}
}

// startDAC2 programs the frame registers and enables the engine.
func (d *Driver) startDAC2(ctx *kernel.Context) {
	c := d.Chip
	d.outl(es1371hw.RegDAC2FrameAddr, uint32(d.buf))
	d.outl(es1371hw.RegDAC2FrameSize, BufferFrames) // dwords: 1 frame = 1 dword
	d.outl(es1371hw.RegDAC2Count, uint32(c.PeriodLen))
	d.outl(es1371hw.RegControl, d.inl(es1371hw.RegControl)|es1371hw.CtrlDAC2En)
}

func (d *Driver) stopDAC2(ctx *kernel.Context) {
	d.outl(es1371hw.RegControl, d.inl(es1371hw.RegControl)&^uint32(es1371hw.CtrlDAC2En))
}

// --- decaf driver ---

// probeDecaf initializes the SRC and codec — the crossing-heavy path that
// dominates Table 3's 237 init crossings and 6.34 s latency — then registers
// the mixer controls and the card with the sound core.
//
//decaf:boundary
func (d *Driver) probeDecaf(uctx *kernel.Context) {
	c := d.DecafChip
	d.initChipConfig(uctx)

	// Register mixer controls with the sound core, one downcall each.
	names := []string{
		"Master Playback Volume", "Master Playback Switch",
		"PCM Playback Volume", "PCM Playback Switch",
		"CD Playback Volume", "CD Playback Switch",
		"Line Playback Volume", "Line Playback Switch",
		"Mic Playback Volume", "Mic Playback Switch",
		"Aux Playback Volume", "Capture Volume", "Capture Switch",
		"PC Speaker Playback Volume", "Phone Playback Volume",
		"Video Playback Volume", "Mono Playback Volume", "3D Control - Switch",
	}
	for _, name := range names {
		n := name
		_ = d.rt.Downcall(uctx, "snd_ctl_add", func(kctx *kernel.Context) error {
			d.card.AddControl(n, 0x0808)
			return nil
		})
	}
	c.MixerCtls = int32(len(names))
	c.Name = "ens1371"
	d.helpers.Msleep(uctx, 750) // codec ready wait, as the C driver sleeps

	if err := d.rt.Downcall(uctx, "snd_card_register", func(kctx *kernel.Context) error {
		return d.snd.Register(d.card)
	}); err != nil {
		decaf.ThrowCause(HWException, err, "snd_card_register")
	}
}

// initChipConfig programs the device-level configuration — SRC RAM, AC'97
// codec bring-up, mixer register file. It is the replayable hardware half of
// probe: recovery re-runs it against a restarted decaf driver, while the
// kernel-object registrations (controls, card) persist and are not replayed.
//
//decaf:boundary
func (d *Driver) initChipConfig(uctx *kernel.Context) {
	c := d.DecafChip

	// Initialize the sample-rate converter RAM, one entry per downcall.
	for addr := uint32(0); addr < es1371hw.SRCRAMSize; addr++ {
		val := uint16(0x8000 | addr)
		if err := d.rt.Downcall(uctx, "snd_es1371_src_write", func(kctx *kernel.Context) error {
			d.srcWrite(kctx, addr, val)
			return nil
		}); err != nil {
			decaf.ThrowCause(HWException, err, "SRC init at %d", addr)
		}
	}

	// AC'97 codec bring-up: reset, vendor id, then the mixer register file.
	_ = d.rt.Downcall(uctx, "snd_ac97_write", func(kctx *kernel.Context) error {
		d.codecWrite(kctx, 0x00, 0) // register reset
		return nil
	})
	var vendorHi, vendorLo uint16
	for i, probe := range []struct {
		addr uint32
		dst  *uint16
	}{{0x7C, &vendorHi}, {0x7E, &vendorLo}} {
		p := probe
		var code int
		if err := d.rt.Downcall(uctx, "snd_ac97_read", func(kctx *kernel.Context) error {
			v, c := d.codecRead(kctx, p.addr)
			*p.dst, code = v, c
			return nil
		}); err != nil {
			decaf.ThrowCause(HWException, err, "codec read %d", i)
		}
		decaf.Check(HWException, code, "ac97 vendor read")
	}
	c.CodecVendor = uint32(vendorHi)<<16 | uint32(vendorLo)
	if c.CodecVendor == 0 {
		decaf.Throw(HWException, "no AC'97 codec detected")
	}

	// Program the standard mixer registers (volumes, input selects).
	for reg := uint32(0x02); reg <= 0x38; reg += 2 {
		r := reg
		_ = d.rt.Downcall(uctx, "snd_ac97_write", func(kctx *kernel.Context) error {
			d.codecWrite(kctx, r, 0x0808)
			return nil
		})
	}
}

// pcmOps implements ksound.PCMOps: every operation except the data copy
// crosses to the decaf driver, producing the paper's "15 calls, all during
// playback start and end".
type pcmOps Driver

// Open implements ksound.PCMOps via the decaf driver. Under recovery
// supervision a contained fault (or an in-progress outage) defers the
// buffer allocation to the journal replay instead of erroring.
func (o *pcmOps) Open(ctx *kernel.Context) error {
	d := (*Driver)(o)
	return d.proxyOp(d.journalPCMOpen, d.journalPCMOpen, func() error {
		return d.openUpcall(ctx)
	})
}

func (d *Driver) openUpcall(ctx *kernel.Context) error {
	return d.rt.Upcall(ctx, "snd_ens1371_playback_open", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() {
			if err := d.rt.Downcall(uctx, "snd_dma_alloc", func(kctx *kernel.Context) error {
				return d.allocBuffer(kctx)
			}); err != nil {
				decaf.ThrowCause(HWException, err, "dma alloc")
			}
		}))
	}, d.Chip)
}

// HWParams implements ksound.PCMOps via the decaf driver, journaling the
// configuration so a recovery replays it.
func (o *pcmOps) HWParams(ctx *kernel.Context, rate, channels, periodFrames int) error {
	d := (*Driver)(o)
	journal := func() { d.journalHWParams(rate, channels, periodFrames) }
	return d.proxyOp(journal, journal, func() error {
		return d.hwParamsUpcall(ctx, rate, channels, periodFrames)
	})
}

func (d *Driver) hwParamsUpcall(ctx *kernel.Context, rate, channels, periodFrames int) error {
	return d.rt.Upcall(ctx, "snd_ens1371_hw_params", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() {
			c := d.DecafChip
			if rate != 44100 && rate != 48000 && rate != 22050 {
				decaf.Throw(HWException, "unsupported rate %d", rate)
			}
			c.Rate, c.Channels, c.PeriodLen = int32(rate), int32(channels), int32(periodFrames)
			// Set the DAC2 rate through the SRC (two register downcalls).
			for i := uint32(0); i < 2; i++ {
				idx := i
				_ = d.rt.Downcall(uctx, "snd_es1371_src_write", func(kctx *kernel.Context) error {
					d.srcWrite(kctx, 0x70+idx, uint16(rate/(1+int(idx))))
					return nil
				})
			}
		}))
	}, d.Chip)
}

// Prepare implements ksound.PCMOps via the decaf driver. Its whole effect
// is the kernel-side pointer reset, so the recovery proxy applies that
// directly when deferring (transient state: nothing to journal).
func (o *pcmOps) Prepare(ctx *kernel.Context) error {
	d := (*Driver)(o)
	return d.proxyOp(nil, func() { d.Chip.HWPos = 0 }, func() error {
		return d.rt.Upcall(ctx, "snd_ens1371_prepare", func(uctx *kernel.Context) error {
			return decaf.ToError(decaf.Try(func() {
				_ = d.rt.Downcall(uctx, "snd_es1371_reset_pointer", func(kctx *kernel.Context) error {
					d.Chip.HWPos = 0
					return nil
				})
			}))
		}, d.Chip)
	})
}

// Trigger implements ksound.PCMOps via the decaf driver, journaling the
// engine state so a recovery replays it (a stream started before the fault
// is running again after the restart).
func (o *pcmOps) Trigger(ctx *kernel.Context, start bool) error {
	d := (*Driver)(o)
	journal := func() { d.journalTrigger(start) }
	return d.proxyOp(journal, journal, func() error {
		return d.triggerUpcall(ctx, start)
	})
}

func (d *Driver) triggerUpcall(ctx *kernel.Context, start bool) error {
	// The trigger body is a registered handler (handlers.go): under a
	// process-separated transport it executes in the worker and reaches the
	// engine through the snd_es1371_dac2_ctrl downcall. Data[0] carries the
	// requested engine state.
	data := []byte{0}
	if start {
		data[0] = 1
	}
	return d.rt.UpcallHandlerData(ctx, "snd_ens1371_trigger", data)
}

// Pointer implements ksound.PCMOps in the nucleus (fast path).
func (o *pcmOps) Pointer(ctx *kernel.Context) uint32 {
	return (*Driver)(o).dev.Position()
}

// CopyAudio implements ksound.PCMOps in the nucleus: the playback data path.
func (o *pcmOps) CopyAudio(ctx *kernel.Context, frameOff uint32, data []byte) error {
	d := (*Driver)(o)
	if d.buf == 0 {
		return fmt.Errorf("ens1371: copy with no buffer")
	}
	off := (frameOff % BufferFrames) * 4
	n := len(data)
	if int(off)+n > BufferFrames*4 {
		// Wrap: split the copy.
		first := BufferFrames*4 - int(off)
		d.kern.Bus().DMA().Write(d.buf+hw.DMAAddr(off), data[:first])
		d.kern.Bus().DMA().Write(d.buf, data[first:])
	} else {
		d.kern.Bus().DMA().Write(d.buf+hw.DMAAddr(off), data)
	}
	ctx.Charge(time.Duration(n/1024+1) * copyCostPerKB)
	return nil
}

// Close implements ksound.PCMOps via the decaf driver. During an outage (or
// on a contained fault) the kernel side releases the buffer directly and
// drops the stream's journal entries — a closed stream is configuration torn
// down, not configuration to replay.
func (o *pcmOps) Close(ctx *kernel.Context) error {
	d := (*Driver)(o)
	deferred := func() {
		d.unjournalStream()
		d.freeBuffer(ctx)
	}
	return d.proxyOp(d.unjournalStream, deferred, func() error {
		return d.rt.Upcall(ctx, "snd_ens1371_playback_close", func(uctx *kernel.Context) error {
			return decaf.ToError(decaf.Try(func() {
				_ = d.rt.Downcall(uctx, "snd_dma_free", func(kctx *kernel.Context) error {
					d.freeBuffer(kctx)
					return nil
				})
			}))
		}, d.Chip)
	})
}

// --- module glue ---

// Module adapts the driver to the module loader.
func (d *Driver) Module() kernel.Module { return (*ensModule)(d) }

type ensModule Driver

// ModuleName implements kernel.Module.
func (m *ensModule) ModuleName() string { return "ens1371" }

// Init creates the card, probes through the decaf driver, and installs the
// PCM and interrupt handler.
func (m *ensModule) Init(ctx *kernel.Context) error {
	d := (*Driver)(m)
	d.dev.PCI.EnableBusMaster()
	d.card = d.snd.NewCard("ens1371")

	err := d.rt.Upcall(ctx, "snd_ens1371_probe", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() { d.probeDecaf(uctx) }))
	}, d.Chip)
	if err != nil {
		return fmt.Errorf("ens1371: probe: %w", err)
	}
	d.journalProbe()
	d.card.SetPCMOps((*pcmOps)(d))
	if err := d.kern.RequestIRQ(d.irq, "ens1371", d.intr, d.Chip); err != nil {
		return err
	}
	return nil
}

// Exit unregisters and quiesces.
func (m *ensModule) Exit(ctx *kernel.Context) {
	d := (*Driver)(m)
	d.stopDAC2(ctx)
	_ = d.kern.FreeIRQ(d.irq, "ens1371")
	_ = d.snd.Unregister("ens1371")
	if d.rt.Mode == xpc.ModeDecaf {
		d.rt.Unshare(d.Chip)
	}
}

// AttachStream lets the playback path deliver period callbacks (set by the
// workload when it opens the substream).
func (d *Driver) AttachStream(st *ksound.Substream) { d.stream = st }
