package ens1371

import (
	"testing"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/xpc"
)

// exhaustDMA drains the arena down to sub-page crumbs so any driver-sized
// allocation must fail.
func exhaustDMA(dma *hw.DMAMemory) {
	for _, chunk := range []int{1 << 20, 4096, 64} {
		for {
			if _, err := dma.Alloc(chunk, 1); err != nil {
				break
			}
		}
	}
}

// TestPlaybackOpenFailsCleanlyOnDMAExhaustion: the decaf driver's
// exception path converts a kernel allocation failure into a clean error at
// the PCM layer, with no partial state left behind.
func TestPlaybackOpenFailsCleanlyOnDMAExhaustion(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	dma := r.kern.Bus().DMA()
	exhaustDMA(dma)
	inUse := dma.InUse()

	card, _ := r.snd.Card("ens1371")
	ctx := r.kern.NewContext("mpg123")
	if _, err := card.OpenPlayback(ctx); err == nil {
		t.Fatal("playback opened with exhausted DMA arena")
	}
	if dma.InUse() != inUse {
		t.Fatalf("failed open leaked %d allocations", dma.InUse()-inUse)
	}
	// The card must be reusable: free space and retry.
	// (Bump allocator cannot actually free space, so just verify the
	// stream slot was not leaked by opening against a fresh rig.)
	r2 := newRig(t, xpc.ModeDecaf)
	if _, err := r2.kern.LoadModule(r2.drv.Module()); err != nil {
		t.Fatal(err)
	}
	card2, _ := r2.snd.Card("ens1371")
	if _, err := card2.OpenPlayback(r2.kern.NewContext("t")); err != nil {
		t.Fatalf("fresh open failed: %v", err)
	}
}

// TestStreamSlotReleasedAfterFailedOpen verifies the failure path does not
// leave the card's single playback slot occupied.
func TestStreamSlotReleasedAfterFailedOpen(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	dma := r.kern.Bus().DMA()
	exhaustDMA(dma)
	card, _ := r.snd.Card("ens1371")
	ctx := r.kern.NewContext("t")
	if _, err := card.OpenPlayback(ctx); err == nil {
		t.Fatal("expected failure")
	}
	// A second attempt must fail with the allocation error again, not with
	// "playback busy" — the slot was released.
	_, err := card.OpenPlayback(ctx)
	if err == nil {
		t.Fatal("expected failure")
	}
	if got := err.Error(); len(got) > 0 && got == "ksound: card \"ens1371\" playback busy" {
		t.Fatalf("stream slot leaked: %v", err)
	}
}
