//go:build unix

package ens1371

import (
	"os"
	"testing"

	"decafdrivers/internal/recovery"
	"decafdrivers/internal/xpc"
)

// TestMain routes the re-exec'd test binary into the decaf worker loop for
// the process-separated transport fixtures below.
func TestMain(m *testing.M) {
	xpc.MaybeRunWorker()
	os.Exit(m.Run())
}

// newProcRig is newRig with the decaf side in a real worker process.
func newProcRig(t *testing.T) (*rig, *xpc.ProcTransport) {
	t.Helper()
	r := newRig(t, xpc.ModeDecaf)
	pt, err := xpc.NewProcTransport(xpc.ProcConfig{Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	r.drv.Runtime().SetTransport(pt)
	t.Cleanup(func() { r.drv.Runtime().SetTransport(nil) })
	return r, pt
}

// TestProcTriggerExecutesInWorkerAndRecovers: the PCM trigger body runs in
// the worker process (its engine-control downcall crossing back for real),
// an injected fault inside a trigger SIGKILLs the worker without surfacing
// through the sound core, and the supervisor's replay over the respawned
// worker leaves the engine state consistent in the shared cells and the
// kernel mirror alike.
func TestProcTriggerExecutesInWorkerAndRecovers(t *testing.T) {
	r, pt := newProcRig(t)
	j := recovery.NewStateJournal()
	r.drv.EnableRecovery(j)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	sup := recovery.NewSupervisor(r.kern, r.drv, j, recovery.Config{})
	sup.Attach()

	card, ok := r.snd.Card("ens1371")
	if !ok {
		t.Fatal("card not registered")
	}
	ctx := r.kern.NewContext("mpg123")
	st, err := card.OpenPlayback(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r.drv.AttachStream(st)
	if err := st.Configure(ctx, 44100, 2, 1024); err != nil {
		t.Fatal(err)
	}
	r.drv.Runtime().ResetCounters()
	if err := st.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// The start trigger executed in the worker: the served-call counter
	// ticked, its downcall crossed back, and both the shared cell and the
	// kernel-side mirror report a running engine.
	c := r.drv.Runtime().Counters()
	if c.WorkerServedCalls == 0 {
		t.Fatal("trigger body did not execute in the worker")
	}
	if c.WorkerDowncalls == 0 {
		t.Fatal("the trigger's engine-control downcall did not cross from the worker")
	}
	if !r.drv.DAC2Running() {
		t.Fatal("running cell not set after a worker-served start trigger")
	}
	if !r.drv.Chip.Running {
		t.Fatal("kernel chip mirror not set after a worker-served start trigger")
	}
	bootPID := pt.WorkerPID()
	if bootPID <= 0 || bootPID == os.Getpid() {
		t.Fatalf("worker pid = %d, want a live separate process", bootPID)
	}

	// Crash the decaf driver inside the stop trigger: the PCM layer must
	// see success (the proxy journals the stop and defers it), the worker
	// dies for real, and the replay over the respawned worker applies the
	// journaled stop.
	r.drv.Runtime().SetFaultInjector(func(call string) bool {
		return call == "snd_ens1371_trigger"
	})
	if err := st.Stop(ctx); err != nil {
		t.Fatalf("contained fault surfaced through the PCM layer: %v", err)
	}
	r.drv.Runtime().SetFaultInjector(nil)
	r.kern.DefaultWorkqueue().Drain()

	stats := sup.Stats()
	if stats.Recoveries != 1 || stats.State != recovery.StateMonitoring {
		t.Fatalf("supervisor stats = %+v", stats)
	}
	c = r.drv.Runtime().Counters()
	if c.WorkerDeaths == 0 || !c.WorkerAlive {
		t.Fatalf("deaths=%d alive=%v: the containment was not physical", c.WorkerDeaths, c.WorkerAlive)
	}
	if pid := pt.WorkerPID(); pid == bootPID {
		t.Fatalf("worker pid %d unchanged across recovery", pid)
	}
	if r.drv.DAC2Running() {
		t.Fatal("running cell still set: the journaled stop was not replayed through the new worker")
	}
	if r.drv.Chip.Running {
		t.Fatal("kernel chip mirror still running after the replayed stop")
	}
	// The recovered driver keeps working through the respawned worker.
	if err := st.Start(ctx); err != nil {
		t.Fatalf("start after recovery: %v", err)
	}
	if !r.drv.DAC2Running() {
		t.Fatal("running cell not set after post-recovery start")
	}
	if err := st.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}
