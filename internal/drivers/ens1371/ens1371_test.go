package ens1371

import (
	"testing"
	"time"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/es1371hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/ksound"
	"decafdrivers/internal/ktime"
	"decafdrivers/internal/xpc"
)

type rig struct {
	clock *ktime.Clock
	kern  *kernel.Kernel
	snd   *ksound.Subsystem
	dev   *es1371hw.Device
	drv   *Driver
}

func newRig(t *testing.T, mode xpc.Mode) *rig {
	t.Helper()
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 4<<20)
	kern := kernel.New(clock, bus)
	snd := ksound.New(kern)
	dev := es1371hw.New(bus, 5, 0xD000)
	drv := New(kern, snd, dev, 0xD000, Config{Mode: mode, IRQ: 5})
	return &rig{clock: clock, kern: kern, snd: snd, dev: dev, drv: drv}
}

func TestProbeInitializesCodecAndSRC(t *testing.T) {
	for _, mode := range []xpc.Mode{xpc.ModeNative, xpc.ModeDecaf} {
		r := newRig(t, mode)
		if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
			t.Fatal(err)
		}
		if r.drv.Chip.CodecVendor != 0x43525914 {
			t.Errorf("%v: CodecVendor = %#x", mode, r.drv.Chip.CodecVendor)
		}
		if got := r.dev.SRCReg(10); got != 0x8000|10 {
			t.Errorf("%v: SRC[10] = %#x", mode, got)
		}
		if card, ok := r.snd.Card("ens1371"); !ok || card.Controls() == 0 {
			t.Errorf("%v: card unregistered or no mixer controls", mode)
		}
	}
}

func TestDecafInitCrossingsMatchPaperOrder(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	rep, err := r.kern.LoadModule(r.drv.Module())
	if err != nil {
		t.Fatal(err)
	}
	c := r.drv.Runtime().Counters()
	// Paper Table 3: 237 crossings; the SRC RAM walk alone is 128.
	if c.Trips() < 150 || c.Trips() > 300 {
		t.Fatalf("init crossings = %d, want ~150-300 (paper: 237)", c.Trips())
	}
	// ens1371 has the slowest decaf initialization in the paper (6.34 s).
	if rep.InitLatency < 3*time.Second {
		t.Fatalf("init latency = %v, expected multiple seconds", rep.InitLatency)
	}
}

func TestPlaybackLifecycle(t *testing.T) {
	for _, mode := range []xpc.Mode{xpc.ModeNative, xpc.ModeDecaf} {
		r := newRig(t, mode)
		if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
			t.Fatal(err)
		}
		card, _ := r.snd.Card("ens1371")
		ctx := r.kern.NewContext("mpg123")
		st, err := card.OpenPlayback(ctx)
		if err != nil {
			t.Fatalf("%v: open: %v", mode, err)
		}
		r.drv.AttachStream(st)
		if err := st.Configure(ctx, 44100, 2, 1024); err != nil {
			t.Fatalf("%v: configure: %v", mode, err)
		}
		// Write one period of PCM.
		pcm := make([]byte, 1024*4)
		for i := range pcm {
			pcm[i] = byte(i)
		}
		if _, err := st.Write(ctx, pcm); err != nil {
			t.Fatalf("%v: write: %v", mode, err)
		}
		if err := st.Start(ctx); err != nil {
			t.Fatalf("%v: start: %v", mode, err)
		}
		// One period at 44.1 kHz with 1024-frame periods = ~23.2 ms.
		r.clock.Advance(25 * time.Millisecond)
		if st.Periods() != 1 {
			t.Fatalf("%v: periods = %d after one period time", mode, st.Periods())
		}
		r.clock.Advance(100 * time.Millisecond)
		if st.Periods() < 4 {
			t.Fatalf("%v: periods = %d after 125ms", mode, st.Periods())
		}
		if err := st.Stop(ctx); err != nil {
			t.Fatal(err)
		}
		consumed := r.dev.Consumed()
		r.clock.Advance(time.Second)
		if r.dev.Consumed() != consumed {
			t.Fatalf("%v: device consumed samples after stop", mode)
		}
		if err := st.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlaybackStartEndCrossings(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	r.drv.Runtime().ResetCounters()
	card, _ := r.snd.Card("ens1371")
	ctx := r.kern.NewContext("mpg123")
	st, _ := card.OpenPlayback(ctx)
	r.drv.AttachStream(st)
	_ = st.Configure(ctx, 44100, 2, 1024)
	_ = st.Start(ctx)
	startCrossings := r.drv.Runtime().Counters().Trips()

	// Steady-state playback: periods elapse with zero crossings.
	pcm := make([]byte, 1024*4)
	for i := 0; i < 40; i++ {
		_, _ = st.Write(ctx, pcm)
		r.clock.Advance(24 * time.Millisecond)
	}
	mid := r.drv.Runtime().Counters().Trips()
	if mid != startCrossings {
		t.Fatalf("steady-state playback crossed %d times", mid-startCrossings)
	}
	_ = st.Stop(ctx)
	_ = st.Close(ctx)
	total := r.drv.Runtime().Counters().Trips()
	// Paper §4.2: "the decaf driver was called 15 times, all during
	// playback start and end". Accept the same order.
	if total < 8 || total > 30 {
		t.Fatalf("playback start+end crossings = %d, want ~8-30 (paper: 15)", total)
	}
}

func TestUnsupportedRateThrows(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	card, _ := r.snd.Card("ens1371")
	ctx := r.kern.NewContext("t")
	st, _ := card.OpenPlayback(ctx)
	if err := st.Configure(ctx, 12345, 2, 1024); err == nil {
		t.Fatal("unsupported rate accepted")
	}
}

func TestCardMutexNotSpinlock(t *testing.T) {
	// The §3.1.3 point: PCM callbacks run under a mutex, so the decaf
	// upcall inside Trigger is legal. Under a spinlock it would fault.
	r := newRig(t, xpc.ModeDecaf)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	card, _ := r.snd.Card("ens1371")
	ctx := r.kern.NewContext("t")
	st, err := card.OpenPlayback(ctx) // upcall under the card mutex
	if err != nil {
		t.Fatal(err)
	}
	if ctx.InAtomic() {
		t.Fatal("context atomic after mutex-protected upcall")
	}
	_ = st.Close(ctx)
}

func TestInterruptAdvancesPosition(t *testing.T) {
	r := newRig(t, xpc.ModeNative)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	card, _ := r.snd.Card("ens1371")
	ctx := r.kern.NewContext("t")
	st, _ := card.OpenPlayback(ctx)
	r.drv.AttachStream(st)
	_ = st.Configure(ctx, 44100, 2, 512)
	_ = st.Start(ctx)
	r.clock.Advance(200 * time.Millisecond)
	if r.drv.Chip.IntrCount == 0 {
		t.Fatal("no period interrupts")
	}
	if r.dev.Consumed() == 0 {
		t.Fatal("device consumed nothing")
	}
	_ = st.Stop(ctx)
}
