package ens1371

import (
	"time"

	"decafdrivers/internal/decaf/registry"
	"decafdrivers/internal/kernel"
)

// cellRunning mirrors the DAC2 engine state into the shared state cells so
// the trigger body can compare and update it from whichever process it
// executes in.
var cellRunning = registry.RegisterCell("ens1371.dac2_running")

// triggerBodyCost is the user-level work of one trigger pass, excluding the
// engine-control downcall.
const triggerBodyCost = 200 * time.Nanosecond

// snd_ens1371_trigger is the PCM trigger body: record the requested engine
// state and program the DAC2 engine through a downcall. Registered in the
// handler table so a process-separated transport executes it in the worker;
// Data[0] carries the start/stop flag.
//
//decaf:boundary
func init() {
	registry.Register("snd_ens1371_trigger", registry.Handler{
		Cost: triggerBodyCost,
		Down: true,
		Fn: func(c *registry.Ctx) error {
			var v uint64
			if len(c.Data) > 0 && c.Data[0] != 0 {
				v = 1
			}
			c.State.Store(cellRunning, v)
			_, err := c.Downcall("snd_es1371_dac2_ctrl", v)
			return err
		},
	})
}

// registerDowncalls installs the kernel-side targets the handler bodies
// name; per-Runtime, so each driver instance's handlers reach its device.
func (d *Driver) registerDowncalls() {
	d.rt.RegisterDowncall("snd_es1371_dac2_ctrl", func(kctx *kernel.Context, arg uint64) (uint64, error) {
		start := arg != 0
		// Mirror into both chip copies: the kernel side reads Chip.Running,
		// and the decaf copy must match what a replayed trigger established
		// (under process separation the worker's truth is the cell; the
		// struct fields are the kernel-resident view of it).
		d.Chip.Running = start
		d.DecafChip.Running = start
		if start {
			d.startDAC2(kctx)
		} else {
			d.stopDAC2(kctx)
		}
		return 0, nil
	})
}

// DAC2Running reads the engine state from the shared state cells.
func (d *Driver) DAC2Running() bool { return d.rt.SharedState().Load(cellRunning) != 0 }
