package ens1371

import (
	"testing"

	"decafdrivers/internal/recovery"
	"decafdrivers/internal/xpc"
)

// TestRecoveryRestoresChipConfigAndStreamState: a decaf-side panic in a PCM
// op under supervision never surfaces to the sound core — the op journals
// its intent and defers — and the restart replays probe configuration and
// stream state so the post-recovery chip matches the pre-fault one.
func TestRecoveryRestoresChipConfigAndStreamState(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	j := recovery.NewStateJournal()
	r.drv.EnableRecovery(j)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	sup := recovery.NewSupervisor(r.kern, r.drv, j, recovery.Config{})
	sup.Attach()
	if j.Len() != 1 {
		t.Fatalf("journal has %d entries after boot, want the probe", j.Len())
	}

	card, ok := r.snd.Card("ens1371")
	if !ok {
		t.Fatal("card not registered")
	}
	ctx := r.kern.NewContext("mpg123")
	st, err := card.OpenPlayback(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r.drv.AttachStream(st)
	if err := st.Configure(ctx, 44100, 2, 1024); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 4 {
		t.Fatalf("journal has %d entries with a running stream, want probe+open+params+trigger", j.Len())
	}
	preVendor := r.drv.Chip.CodecVendor
	preCtls := card.Controls()

	// Crash the decaf driver inside the stop trigger: the PCM layer must
	// see success (the proxy journals the stop and defers it), and the
	// supervisor must restart and replay.
	r.drv.Runtime().SetFaultInjector(func(call string) bool {
		return call == "snd_ens1371_trigger"
	})
	if err := st.Stop(ctx); err != nil {
		t.Fatalf("contained fault surfaced through the PCM layer: %v", err)
	}
	r.drv.Runtime().SetFaultInjector(nil)
	r.kern.DefaultWorkqueue().Drain()

	stats := sup.Stats()
	if stats.Recoveries != 1 || stats.State != recovery.StateMonitoring {
		t.Fatalf("supervisor stats = %+v", stats)
	}
	if stats.HeldReplayed == 0 {
		t.Fatal("the deferred trigger was not accounted as held work")
	}
	// Replay rebuilt the configuration: codec vendor on the fresh decaf
	// chip, hw_params, and the journaled stop applied (engine not running).
	c := r.drv.DecafChip
	if c.CodecVendor != preVendor || c.Rate != 44100 || c.Channels != 2 || c.PeriodLen != 1024 {
		t.Fatalf("post-recovery decaf chip = %+v", *c)
	}
	if c.Running {
		t.Fatal("journaled stop was not replayed: engine still running")
	}
	// Kernel-object registrations survived without duplication: same card,
	// same control count.
	if card.Controls() != preCtls {
		t.Fatalf("controls = %d after recovery, want %d (no duplicate registration)", card.Controls(), preCtls)
	}
	if _, ok := r.snd.Card("ens1371"); !ok {
		t.Fatal("card lost during recovery")
	}
	// The recovered driver keeps working: a fresh stream cycle succeeds.
	if err := st.Close(ctx); err != nil {
		t.Fatal(err)
	}
	st2, err := card.OpenPlayback(ctx)
	if err != nil {
		t.Fatalf("open after recovery: %v", err)
	}
	if err := st2.Configure(ctx, 48000, 2, 512); err != nil {
		t.Fatal(err)
	}
	if err := st2.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st2.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestPrepareFaultAbsorbedAndFailStopErrors: Prepare is proxied like every
// other PCM op (a contained fault defers the pointer reset), and once the
// restart budget is exhausted the card errors explicitly instead of
// silently swallowing ops.
func TestPrepareFaultAbsorbedAndFailStopErrors(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	j := recovery.NewStateJournal()
	r.drv.EnableRecovery(j)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	sup := recovery.NewSupervisor(r.kern, r.drv, j, recovery.Config{Policy: recovery.Immediate{MaxRestarts: 1}})
	sup.Attach()

	card, _ := r.snd.Card("ens1371")
	ctx := r.kern.NewContext("t")
	st, err := card.OpenPlayback(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Configure runs HWParams then Prepare: a fault in Prepare must be
	// absorbed, not surfaced through the sound core.
	r.drv.Runtime().SetFaultInjector(func(call string) bool {
		return call == "snd_ens1371_prepare"
	})
	if err := st.Configure(ctx, 44100, 2, 1024); err != nil {
		t.Fatalf("contained Prepare fault surfaced: %v", err)
	}
	if r.drv.Chip.HWPos != 0 {
		t.Fatal("deferred Prepare did not apply the pointer reset")
	}
	// The injector still fires on every prepare: the single-restart budget
	// exhausts (replays are clean — probe has no prepare — so exhaust it
	// with repeated faults instead).
	r.kern.DefaultWorkqueue().Drain()
	if st2 := sup.Stats(); st2.Recoveries != 1 {
		t.Fatalf("stats after first fault: %+v", st2)
	}
	// Second fault: budget (MaxRestarts 1) is exhausted -> fail-stop.
	if err := st.Configure(ctx, 44100, 2, 1024); err != nil {
		t.Fatalf("second contained fault surfaced: %v", err)
	}
	r.kern.DefaultWorkqueue().Drain()
	if st2 := sup.Stats(); st2.FailStops != 1 {
		t.Fatalf("no fail-stop: %+v", st2)
	}
	// A fail-stopped card errors PCM ops explicitly — dead, not slow.
	if err := st.Configure(ctx, 44100, 2, 1024); err == nil {
		t.Fatal("PCM op succeeded on a fail-stopped card")
	}
	if err := st.Start(ctx); err == nil {
		t.Fatal("Start succeeded on a fail-stopped card")
	}
}
