package e1000

import (
	"testing"
	"time"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/recovery"
	"decafdrivers/internal/xpc"
)

// exhaustDMA drains the arena down to sub-page crumbs so any driver-sized
// allocation must fail.
func exhaustDMA(dma *hw.DMAMemory) {
	for _, chunk := range []int{1 << 20, 4096, 64} {
		for {
			if _, err := dma.Alloc(chunk, 1); err != nil {
				break
			}
		}
	}
}

// TestOpenFailsCleanlyOnDMAExhaustion: the decaf driver's nested exception
// handlers (Figure 4) release exactly what was acquired when an allocation
// fails mid-open, so nothing leaks and the failure is a clean error.
func TestOpenFailsCleanlyOnDMAExhaustion(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	r.load(t)
	dma := r.kern.Bus().DMA()
	exhaustDMA(dma)
	inUse := dma.InUse()

	ctx := r.kern.NewContext("ifup")
	if err := r.drv.NetDevice().Up(ctx); err == nil {
		t.Fatal("interface came up with an exhausted DMA arena")
	}
	if got := dma.InUse(); got != inUse {
		t.Fatalf("failed open leaked %d allocations", got-inUse)
	}
	// The IRQ line must not be left claimed by the failed open.
	if err := r.kern.RequestIRQ(9, "probe-check", func(*kernel.Context, int, any) {}, nil); err != nil {
		t.Fatalf("IRQ leaked by failed open: %v", err)
	}
	_ = r.kern.FreeIRQ(9, "probe-check")
}

// TestInjectedDataPathFaultContained: a decaf-side panic injected into the
// TX data path fails only its flush — frames drop with accounting, the
// kernel survives, and traffic resumes on the next flush.
func TestInjectedDataPathFaultContained(t *testing.T) {
	const batchN = 4
	r := newDecafPathRig(t, batchN)
	r.load(t)
	r.up(t)
	r.drv.Runtime().SetFaultInjector(workloadFaultNth("e1000_xmit_frame", 2))

	ctx := r.kern.NewContext("xmit")
	pkt := knet.NewPacket([6]byte{1, 2, 3, 4, 5, 6}, r.drv.Adapter.MAC, 0x0800, 100)
	// First batch: the 2nd call faults mid-flush. Without a supervisor the
	// error surfaces (seed behavior) but must be a contained UserFault.
	var flushErr error
	for i := 0; i < batchN; i++ {
		if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil && flushErr == nil {
			flushErr = err
		}
	}
	if !xpc.IsUserFault(flushErr) {
		t.Fatalf("flush error = %v, want contained UserFault", flushErr)
	}
	if got := r.drv.Adapter.Stats.TxPackets; got != 0 {
		t.Fatalf("faulted flush transmitted %d frames", got)
	}
	c := r.drv.Runtime().Counters()
	if c.Faults != 1 || c.FaultsInjected != 1 {
		t.Fatalf("Faults=%d FaultsInjected=%d", c.Faults, c.FaultsInjected)
	}
	// The kernel survives: the next batch transmits normally.
	for i := 0; i < batchN; i++ {
		if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil {
			t.Fatalf("transmit after contained fault: %v", err)
		}
	}
	if got := r.drv.Adapter.Stats.TxPackets; got != batchN {
		t.Fatalf("post-fault batch transmitted %d frames, want %d", got, batchN)
	}
}

// workloadFaultNth is a minimal counting injector (the workload package has
// the full FaultPlan; driver tests keep their own to avoid the dependency).
func workloadFaultNth(call string, nth int) func(string) bool {
	n := 0
	return func(c string) bool {
		if c != call {
			return false
		}
		n++
		return n == nth
	}
}

// TestRecoveryRestoresConfigAfterDataPathFault is the driver-level recovery
// fixture: an injected TX fault under supervision never surfaces to the
// kernel caller, the supervisor restarts the decaf side, and the replayed
// journal rebuilds a configuration identical to the pre-fault one.
func TestRecoveryRestoresConfigAfterDataPathFault(t *testing.T) {
	const batchN = 4
	r := newDecafPathRig(t, batchN)
	j := recovery.NewStateJournal()
	r.drv.EnableRecovery(j, 0)
	r.load(t)
	r.up(t)
	sup := recovery.NewSupervisor(r.kern, r.drv, j, recovery.Config{})
	sup.Attach()
	if j.Len() != 2 {
		t.Fatalf("journal has %d entries after boot, want probe+ifup", j.Len())
	}

	pre := *r.drv.Adapter // config snapshot (value copy)
	r.drv.Runtime().SetFaultInjector(workloadFaultNth("e1000_xmit_frame", 2))

	ctx := r.kern.NewContext("xmit")
	pkt := knet.NewPacket([6]byte{1, 2, 3, 4, 5, 6}, r.drv.Adapter.MAC, 0x0800, 100)
	for i := 0; i < batchN; i++ {
		if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil {
			t.Fatalf("fault surfaced to kernel caller: %v", err)
		}
	}
	// The supervisor's deferred work performs the whole restart (immediate
	// policy: teardown, decaf reset, journal replay, resume in one drain).
	r.kern.DefaultWorkqueue().Drain()

	st := sup.Stats()
	if st.Recoveries != 1 || st.State != recovery.StateMonitoring {
		t.Fatalf("supervisor stats = %+v", st)
	}
	if st.Replayed != 2 {
		t.Fatalf("replayed %d journal entries, want 2", st.Replayed)
	}
	a := r.drv.Adapter
	if a.MAC != pre.MAC || a.TxRingSize != pre.TxRingSize || a.RxRingSize != pre.RxRingSize ||
		a.FlowControl != pre.FlowControl || a.EEPROM != pre.EEPROM || a.PhyID != pre.PhyID {
		t.Fatalf("post-recovery kernel config differs from pre-fault:\npre  %+v\npost %+v", pre, *a)
	}
	da := r.drv.DecafAdapter
	if da.MAC != pre.MAC || da.TxRingSize != pre.TxRingSize || da.EEPROM != pre.EEPROM {
		t.Fatal("post-recovery decaf config differs from pre-fault")
	}
	// The restarted driver carries traffic again.
	for i := 0; i < batchN; i++ {
		if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil {
			t.Fatalf("transmit after recovery: %v", err)
		}
	}
	if r.drv.Adapter.Stats.TxPackets == 0 {
		t.Fatal("no frames transmitted after recovery")
	}
}

// TestControlOpsRefusedDuringOutage: ifup/ifdown during a recovery outage
// refuse instead of crossing into the suspect, mid-rebuild decaf driver;
// after resume they work again.
func TestControlOpsRefusedDuringOutage(t *testing.T) {
	const batchN = 4
	r := newDecafPathRig(t, batchN)
	j := recovery.NewStateJournal()
	r.drv.EnableRecovery(j, 0)
	r.load(t)
	r.up(t)
	// Backoff policy: the outage stays open until the timer fires, giving
	// an observable window.
	sup := recovery.NewSupervisor(r.kern, r.drv, j,
		recovery.Config{Policy: recovery.Backoff{Base: 5 * time.Millisecond}})
	sup.Attach()
	r.drv.Runtime().SetFaultInjector(workloadFaultNth("e1000_xmit_frame", 1))

	ctx := r.kern.NewContext("t")
	pkt := knet.NewPacket([6]byte{1, 2, 3, 4, 5, 6}, r.drv.Adapter.MAC, 0x0800, 100)
	for i := 0; i < batchN; i++ {
		if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil {
			t.Fatal(err)
		}
	}
	r.kern.DefaultWorkqueue().Drain()
	if sup.State() != recovery.StateWaitingRestart {
		t.Fatalf("state = %v, want an open outage window", sup.State())
	}
	if err := r.drv.NetDevice().Down(ctx); err == nil {
		t.Fatal("ifdown succeeded during the outage")
	}
	if !r.drv.NetDevice().IsUp() {
		t.Fatal("refused ifdown still marked the interface down")
	}
	// Resume, then control ops work again.
	r.clock.Advance(10 * time.Millisecond)
	r.kern.DefaultWorkqueue().Drain()
	if st := sup.Stats(); st.Recoveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := r.drv.NetDevice().Down(ctx); err != nil {
		t.Fatalf("ifdown after resume: %v", err)
	}
	if err := r.drv.NetDevice().Up(ctx); err != nil {
		t.Fatalf("ifup after resume: %v", err)
	}
}
