package e1000

import (
	"time"

	"decafdrivers/internal/decaf/registry"
	"decafdrivers/internal/hw/e1000hw"
	"decafdrivers/internal/kernel"
)

// Shared state cells for the decaf-resident bodies. Cells are registered at
// package init so the parent and a re-exec'd worker agree on the indices,
// and under a process-separated transport they live in the shared mapping —
// the analogue of the adapter fields the closure-era bodies mutated, minus
// the marshaling: both sides read the same memory.
var (
	cellTxFrames     = registry.RegisterCell("e1000.decaf_tx_frames")
	cellRxFrames     = registry.RegisterCell("e1000.decaf_rx_frames")
	cellWatchdogRuns = registry.RegisterCell("e1000.watchdog_runs")
	cellLinkUp       = registry.RegisterCell("e1000.link_up")
)

// Decaf-side per-frame handling costs in the decaf data path: cheaper than a
// crossing by orders of magnitude, so batching gains show up as crossing
// savings rather than being drowned by user-level work.
const (
	decafTxFrameCost = 350 * time.Nanosecond
	decafRxFrameCost = 600 * time.Nanosecond
	// watchdogBodyCost is the user-level work of one watchdog pass (link
	// evaluation and statistics), excluding its downcalls.
	watchdogBodyCost = 500 * time.Nanosecond
)

// The handler table holds the decaf call bodies that execute in the worker
// process under a process-separated transport (and dispatch inline under the
// in-process ones). Bodies reach driver state only through the shared cells
// and reach the kernel or device only through named downcalls — the same
// discipline process separation enforces physically.
//
//decaf:boundary
func init() {
	// e1000_xmit_frame is the decaf-driver TX body in the decaf data path:
	// user-level frame validation and accounting. The hardware submit stays
	// in the nucleus after the flight is reaped.
	registry.Register("e1000_xmit_frame", registry.Handler{
		Cost: decafTxFrameCost,
		Fn: func(c *registry.Ctx) error {
			c.State.Add(cellTxFrames, 1)
			return nil
		},
	})
	// e1000_rx_frame is the decaf-driver RX body: user-level inspection of a
	// received frame before the nucleus hands it up the stack.
	registry.Register("e1000_rx_frame", registry.Handler{
		Cost: decafRxFrameCost,
		Fn: func(c *registry.Ctx) error {
			c.State.Add(cellRxFrames, 1)
			return nil
		},
	})
	// e1000_watchdog is the two-second watchdog body, running in the decaf
	// driver because the kernel timer defers it to a work item (§3.1.3). It
	// reads link state from the device through a downcall and reports
	// carrier changes to the kernel through another.
	registry.Register("e1000_watchdog", registry.Handler{
		Cost: watchdogBodyCost,
		Down: true,
		Fn: func(c *registry.Ctx) error {
			c.State.Add(cellWatchdogRuns, 1)
			status, err := c.Downcall("e1000_read_status", 0)
			if err != nil {
				return err
			}
			linkNow := uint32(status)&e1000hw.StatusLU != 0
			if linkNow != (c.State.Load(cellLinkUp) != 0) {
				var v uint64
				if linkNow {
					v = 1
				}
				c.State.Store(cellLinkUp, v)
				if _, err := c.Downcall("netif_carrier_change", v); err != nil {
					return err
				}
			}
			return nil
		},
	})
}

// registerDowncalls installs the kernel-side targets the handler bodies
// name. Registration is per-Runtime, so each driver instance's handlers
// reach that instance's device and netdev.
func (d *Driver) registerDowncalls() {
	d.rt.RegisterDowncall("e1000_read_status", func(kctx *kernel.Context, _ uint64) (uint64, error) {
		return d.dev.PCI.MMIORead(0, e1000hw.RegSTATUS, 4), nil
	})
	d.rt.RegisterDowncall("netif_carrier_change", func(kctx *kernel.Context, arg uint64) (uint64, error) {
		up := arg != 0
		// Mirror the cell into the kernel adapter: the nucleus and the
		// harness read link state here, not from the decaf cells.
		d.Adapter.LinkUp = up
		if d.netdev == nil {
			return 0, nil
		}
		if up {
			d.netdev.CarrierOn()
		} else {
			d.netdev.CarrierOff()
		}
		return 0, nil
	})
}

// setLinkCell mirrors a kernel-side link transition into the shared cell the
// watchdog handler compares against.
func (d *Driver) setLinkCell(up bool) {
	var v uint64
	if up {
		v = 1
	}
	d.rt.SharedState().Store(cellLinkUp, v)
}

// WatchdogRuns reads the watchdog pass count from the shared state cells.
func (d *Driver) WatchdogRuns() uint64 { return d.rt.SharedState().Load(cellWatchdogRuns) }

// DecafTxFrames reads the decaf data path's TX frame count.
func (d *Driver) DecafTxFrames() uint64 { return d.rt.SharedState().Load(cellTxFrames) }

// DecafRxFrames reads the decaf data path's RX frame count.
func (d *Driver) DecafRxFrames() uint64 { return d.rt.SharedState().Load(cellRxFrames) }
