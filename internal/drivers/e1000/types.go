// Package e1000 is the Decaf conversion of the Intel E1000 gigabit Ethernet
// driver, the paper's case-study driver (§5). The driver nucleus keeps the
// data path (interrupt handler, transmit, ring cleaning) in the kernel; the
// decaf driver holds probe, open/close, PHY and EEPROM management, parameter
// validation and the watchdog, written in exception style (Figures 4 and 5).
package e1000

import (
	"decafdrivers/internal/xdr"
)

// HWException is the checked exception class the decaf driver throws, the
// analogue of the case study's E1000HWException.
const HWException = "E1000HWException"

// Ring geometry defaults (the module parameters' defaults).
const (
	DefaultTxRing = 256
	DefaultRxRing = 256
	MaxRing       = 4096
	MinRing       = 80
	RxBufferSize  = 2048
)

// EEPROMWords is the size of the adapter's EEPROM shadow.
const EEPROMWords = 64

// ConfigWords is the saved PCI configuration space in dwords — the
// config_space array with the exp(PCI_LEN) annotation from Figure 3.
const ConfigWords = 64

// NetStats are the interface counters kept in the adapter and read by the
// decaf watchdog.
type NetStats struct {
	TxPackets uint64
	TxBytes   uint64
	RxPackets uint64
	RxBytes   uint64
	TxErrors  uint64
	RxErrors  uint64
	RxDropped uint64
}

// Adapter is the e1000_adapter analogue: the structure shared between the
// driver nucleus and the decaf driver. Kernel-only operational fields (ring
// cursors, IRQ bookkeeping) are excluded from marshaling by FieldMask, the
// field-level customization of §2.3.
type Adapter struct {
	// Identity and configuration, accessed by the decaf driver.
	Name        string
	MAC         [6]byte
	MsgEnable   int32
	Mtu         int32
	FlowControl uint32
	PhyID       uint32
	EEPROM      [EEPROMWords]uint16
	ConfigSpace [ConfigWords]uint32
	TxRingSize  uint32
	RxRingSize  uint32

	// Link state and statistics. The decaf watchdog's own pass count and
	// the decaf data path's frame counters are not adapter fields: they are
	// shared state cells (handlers.go) readable from both processes.
	LinkUp bool
	Stats  NetStats

	// Kernel-only data-path state (masked out of marshaling).
	TxNextToUse   uint32
	TxNextToClean uint32
	RxNextToClean uint32
	IntrCount     uint64
}

// FieldMask is the marshaling specification DriverSlicer generates for the
// adapter: only decaf-accessed fields cross domains.
func FieldMask() xdr.FieldMask {
	return xdr.FieldMask{
		"Adapter": {
			"Name": true, "MAC": true, "MsgEnable": true, "Mtu": true,
			"FlowControl": true, "PhyID": true, "EEPROM": true,
			"ConfigSpace": true, "TxRingSize": true, "RxRingSize": true,
			"LinkUp": true, "Stats": true,
		},
	}
}
