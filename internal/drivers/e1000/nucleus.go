package e1000

import (
	"fmt"
	"time"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/e1000hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/knet"
)

// Per-packet CPU costs charged by the data path, calibrated to the paper's
// Table 3 CPU utilizations (gigabit DMA hardware: cheap sends, costlier
// receives because of buffer handling).
const (
	txPacketCost = 180 * time.Nanosecond
	rxPacketCost = 2100 * time.Nanosecond
	intrCost     = 500 * time.Nanosecond
)

// txRing is the kernel-only transmit ring state: DMA addresses never cross
// to user level.
type txRing struct {
	descBase hw.DMAAddr
	buffers  []hw.DMAAddr
	count    uint32
}

type rxRing struct {
	descBase hw.DMAAddr
	buffers  []hw.DMAAddr
	count    uint32
}

// nucleus is the driver nucleus: the kernel-resident half of the split
// driver. Its methods are the functions DriverSlicer's reachability pass
// keeps in the kernel.
//
//decaf:nucleus
type nucleus struct {
	drv     *Driver
	txLock  *kernel.SpinLock
	rxLock  *kernel.SpinLock
	tx      txRing
	rx      rxRing
	irqName string
}

func newNucleus(d *Driver) *nucleus {
	return &nucleus{
		drv:     d,
		txLock:  kernel.NewSpinLock("e1000.tx_lock"),
		rxLock:  kernel.NewSpinLock("e1000.rx_lock"),
		irqName: "e1000",
	}
}

func (n *nucleus) readReg(off uint32) uint32 {
	return uint32(n.drv.dev.PCI.MMIORead(0, off, 4))
}

func (n *nucleus) writeReg(off uint32, v uint32) {
	n.drv.dev.PCI.MMIOWrite(0, off, 4, uint64(v))
}

// readEEPROMWord is a kernel entry point: the decaf driver reads the EEPROM
// one word at a time through downcalls, because EERD is shared with the
// data path and must be serialized in the kernel.
func (n *nucleus) readEEPROMWord(ctx *kernel.Context, addr uint32) (uint16, error) {
	if addr >= EEPROMWords {
		return 0, fmt.Errorf("e1000: EEPROM address %d out of range", addr)
	}
	n.writeReg(e1000hw.RegEERD, addr<<8|e1000hw.EerdStart)
	ctx.UDelay(2)
	v := n.readReg(e1000hw.RegEERD)
	if v&e1000hw.EerdDone == 0 {
		return 0, fmt.Errorf("e1000: EEPROM read of word %d did not complete", addr)
	}
	return uint16(v >> 16), nil
}

// phyRead is a kernel entry point wrapping MDIC reads; it returns a negative
// errno-style code on failure, the C convention the decaf driver converts
// to exceptions (Figure 5).
func (n *nucleus) phyRead(ctx *kernel.Context, reg uint32) (uint16, int) {
	n.writeReg(e1000hw.RegMDIC, (reg&0x1F)<<16|e1000hw.MdicOpRead)
	ctx.UDelay(5)
	v := n.readReg(e1000hw.RegMDIC)
	if v&e1000hw.MdicReady == 0 || v&e1000hw.MdicError != 0 {
		return 0, -5 // -EIO
	}
	return uint16(v), 0
}

// phyWrite is the MDIC write twin of phyRead.
func (n *nucleus) phyWrite(ctx *kernel.Context, reg uint32, val uint16) int {
	n.writeReg(e1000hw.RegMDIC, (reg&0x1F)<<16|e1000hw.MdicOpWrite|uint32(val))
	ctx.UDelay(5)
	v := n.readReg(e1000hw.RegMDIC)
	if v&e1000hw.MdicReady == 0 || v&e1000hw.MdicError != 0 {
		return -5
	}
	return 0
}

// resetHW issues a full device reset (kernel entry point: reset must be
// serialized against the data path).
func (n *nucleus) resetHW(ctx *kernel.Context) {
	n.writeReg(e1000hw.RegCTRL, e1000hw.CtrlRST)
	ctx.UDelay(10)
}

// setupTxResources allocates the transmit descriptor ring and its buffers
// in DMA memory — Figure 4's e1000_setup_all_tx_resources, a kernel entry
// point because DMA allocation is a kernel service.
func (n *nucleus) setupTxResources(ctx *kernel.Context) error {
	a := n.drv.Adapter
	count := a.TxRingSize
	dma := n.drv.kern.Bus().DMA()
	base, err := dma.Alloc(int(count)*e1000hw.TxDescSize, 128)
	if err != nil {
		return fmt.Errorf("e1000: tx ring: %w", err)
	}
	bufs := make([]hw.DMAAddr, 0, count)
	for i := uint32(0); i < count; i++ {
		b, err := dma.Alloc(RxBufferSize, 64)
		if err != nil {
			// Release what was acquired: the C driver's error path frees
			// partial allocations before propagating the failure.
			for _, pb := range bufs {
				_ = dma.Free(pb)
			}
			_ = dma.Free(base)
			return fmt.Errorf("e1000: tx buffer %d: %w", i, err)
		}
		bufs = append(bufs, b)
		dma.Write64(base+hw.DMAAddr(i*e1000hw.TxDescSize), uint64(b))
	}
	n.tx = txRing{descBase: base, buffers: bufs, count: count}
	n.writeReg(e1000hw.RegTDBAL, uint32(base))
	n.writeReg(e1000hw.RegTDLEN, count*e1000hw.TxDescSize)
	n.writeReg(e1000hw.RegTDH, 0)
	n.writeReg(e1000hw.RegTDT, 0)
	a.TxNextToUse, a.TxNextToClean = 0, 0
	return nil
}

// setupRxResources allocates the receive ring, Figure 4's
// e1000_setup_all_rx_resources.
func (n *nucleus) setupRxResources(ctx *kernel.Context) error {
	a := n.drv.Adapter
	count := a.RxRingSize
	dma := n.drv.kern.Bus().DMA()
	base, err := dma.Alloc(int(count)*e1000hw.RxDescSize, 128)
	if err != nil {
		return fmt.Errorf("e1000: rx ring: %w", err)
	}
	bufs := make([]hw.DMAAddr, 0, count)
	for i := uint32(0); i < count; i++ {
		b, err := dma.Alloc(RxBufferSize, 64)
		if err != nil {
			for _, pb := range bufs {
				_ = dma.Free(pb)
			}
			_ = dma.Free(base)
			return fmt.Errorf("e1000: rx buffer %d: %w", i, err)
		}
		bufs = append(bufs, b)
		dma.Write64(base+hw.DMAAddr(i*e1000hw.RxDescSize), uint64(b))
	}
	n.rx = rxRing{descBase: base, buffers: bufs, count: count}
	n.writeReg(e1000hw.RegRDBAL, uint32(base))
	n.writeReg(e1000hw.RegRDLEN, count*e1000hw.RxDescSize)
	n.writeReg(e1000hw.RegRDH, 0)
	n.writeReg(e1000hw.RegRDT, count-1) // leave one-slot gap
	a.RxNextToClean = 0
	return nil
}

func (n *nucleus) freeTxResources(ctx *kernel.Context) {
	dma := n.drv.kern.Bus().DMA()
	if n.tx.descBase != 0 {
		_ = dma.Free(n.tx.descBase)
		for _, b := range n.tx.buffers {
			_ = dma.Free(b)
		}
		n.tx = txRing{}
	}
}

func (n *nucleus) freeRxResources(ctx *kernel.Context) {
	dma := n.drv.kern.Bus().DMA()
	if n.rx.descBase != 0 {
		_ = dma.Free(n.rx.descBase)
		for _, b := range n.rx.buffers {
			_ = dma.Free(b)
		}
		n.rx = rxRing{}
	}
}

// up enables the receiver and transmitter (e1000_up).
func (n *nucleus) up(ctx *kernel.Context) {
	n.writeReg(e1000hw.RegRCTL, e1000hw.RctlEN)
	n.writeReg(e1000hw.RegTCTL, e1000hw.TctlEN)
	n.writeReg(e1000hw.RegIMS, e1000hw.IntTXDW|e1000hw.IntLSC|e1000hw.IntRXT0)
}

// down quiesces the device (e1000_down).
func (n *nucleus) down(ctx *kernel.Context) {
	n.writeReg(e1000hw.RegIMC, ^uint32(0))
	n.writeReg(e1000hw.RegRCTL, 0)
	n.writeReg(e1000hw.RegTCTL, 0)
}

// requestIRQ installs the interrupt handler (kernel entry point).
func (n *nucleus) requestIRQ(ctx *kernel.Context) error {
	return n.drv.kern.RequestIRQ(n.drv.irq, n.irqName, n.intr, n.drv.Adapter)
}

func (n *nucleus) freeIRQ(ctx *kernel.Context) {
	_ = n.drv.kern.FreeIRQ(n.drv.irq, n.irqName)
}

// intr is the interrupt handler, a critical root: it must stay in the
// kernel (high priority, may not block).
func (n *nucleus) intr(ctx *kernel.Context, irq int, dev any) {
	a := dev.(*Adapter)
	icr := n.readReg(e1000hw.RegICR) // read clears
	if icr == 0 {
		return // not ours (shared line)
	}
	ctx.Charge(intrCost)
	a.IntrCount++
	if icr&e1000hw.IntTXDW != 0 {
		n.cleanTxIRQ(ctx)
	}
	if icr&e1000hw.IntRXT0 != 0 {
		n.cleanRxIRQ(ctx)
	}
	if icr&e1000hw.IntLSC != 0 {
		// Link changed: high-priority context cannot call the decaf
		// driver; defer the watchdog body to a work item (§3.1.3).
		n.drv.scheduleWatchdogWork()
	}
}

// cleanTxIRQ reclaims transmitted descriptors (e1000_clean_tx_irq).
func (n *nucleus) cleanTxIRQ(ctx *kernel.Context) {
	a := n.drv.Adapter
	n.txLock.Lock(ctx)
	defer n.txLock.Unlock(ctx)
	dma := n.drv.kern.Bus().DMA()
	for a.TxNextToClean != a.TxNextToUse {
		descAddr := n.tx.descBase + hw.DMAAddr(a.TxNextToClean*e1000hw.TxDescSize)
		status := dma.Read8(descAddr + 12)
		if status&e1000hw.TxStatusDD == 0 {
			break
		}
		dma.Write8(descAddr+12, 0)
		a.TxNextToClean = (a.TxNextToClean + 1) % n.tx.count
	}
}

// cleanRxIRQ drains received frames into the stack (e1000_clean_rx_irq).
func (n *nucleus) cleanRxIRQ(ctx *kernel.Context) {
	a := n.drv.Adapter
	n.rxLock.Lock(ctx)
	dma := n.drv.kern.Bus().DMA()
	var frames []*knet.Packet
	for {
		descAddr := n.rx.descBase + hw.DMAAddr(a.RxNextToClean*e1000hw.RxDescSize)
		status := dma.Read8(descAddr + 12)
		if status&e1000hw.RxStatusDD == 0 {
			break
		}
		length := int(dma.Read16(descAddr + 8))
		buf := n.rx.buffers[a.RxNextToClean]
		data := dma.Read(buf, length)
		frames = append(frames, &knet.Packet{Data: data})
		dma.Write8(descAddr+12, 0)
		// Return the descriptor to the hardware.
		n.writeReg(e1000hw.RegRDT, a.RxNextToClean)
		a.RxNextToClean = (a.RxNextToClean + 1) % n.rx.count
		ctx.Charge(rxPacketCost)
		a.Stats.RxPackets++
		a.Stats.RxBytes += uint64(length)
	}
	n.rxLock.Unlock(ctx)
	n.drv.deliverRx(frames)
}

// xmitFrame is the hard_start_xmit path, a critical root.
func (n *nucleus) xmitFrame(ctx *kernel.Context, pkt *knet.Packet) error {
	a := n.drv.Adapter
	if n.tx.count == 0 {
		return fmt.Errorf("e1000: transmit on torn-down ring")
	}
	if len(pkt.Data) > RxBufferSize {
		a.Stats.TxErrors++
		return fmt.Errorf("e1000: frame of %d bytes exceeds buffer", len(pkt.Data))
	}
	n.txLock.Lock(ctx)
	next := (a.TxNextToUse + 1) % n.tx.count
	if next == a.TxNextToClean {
		n.txLock.Unlock(ctx)
		a.Stats.TxErrors++
		return fmt.Errorf("e1000: transmit ring full")
	}
	dma := n.drv.kern.Bus().DMA()
	i := a.TxNextToUse
	descAddr := n.tx.descBase + hw.DMAAddr(i*e1000hw.TxDescSize)
	dma.Write(n.tx.buffers[i], pkt.Data)
	dma.Write64(descAddr, uint64(n.tx.buffers[i]))
	dma.Write16(descAddr+8, uint16(len(pkt.Data)))
	dma.Write8(descAddr+11, e1000hw.TxCmdEOP|e1000hw.TxCmdRS)
	a.TxNextToUse = next
	a.Stats.TxPackets++
	a.Stats.TxBytes += uint64(len(pkt.Data))
	ctx.Charge(txPacketCost)
	tail := a.TxNextToUse
	n.txLock.Unlock(ctx)

	// Ring the doorbell outside the lock: the write synchronously triggers
	// transmission and the TXDW interrupt, whose handler takes the lock.
	n.writeReg(e1000hw.RegTDT, tail)
	return nil
}

// snapshotConfigSpace copies PCI configuration space into the adapter, the
// config_space array of Figure 3 (kernel entry point: PCI config access).
func (n *nucleus) snapshotConfigSpace(ctx *kernel.Context) {
	snap := n.drv.dev.PCI.ConfigSnapshot()
	copy(n.drv.Adapter.ConfigSpace[:], snap[:])
}
