package e1000

import (
	"decafdrivers/internal/decaf"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/recovery"
	"decafdrivers/internal/xpc"
)

// DefaultTxHoldLimit bounds the frames the net-device recovery proxy holds
// for replay during an outage (roughly one transmit ring's worth): beyond
// it, frames drop with accounting rather than queueing without bound.
const DefaultTxHoldLimit = 256

// EnableRecovery attaches the shadow-driver state journal and arms the
// driver for supervision: configuration-establishing crossings (probe,
// ifup) are journaled for replay, the TX path absorbs fault-contained flush
// outcomes (the supervisor owns the restart), and the net-device proxy
// holds up to holdLimit frames during an outage (<=0 selects
// DefaultTxHoldLimit). Call before LoadModule so the probe is journaled.
func (d *Driver) EnableRecovery(j *recovery.StateJournal, holdLimit int) {
	if holdLimit <= 0 {
		holdLimit = DefaultTxHoldLimit
	}
	d.journal = j
	d.holdLimit = holdLimit
}

// journalProbe records the probe as the first replayable configuration
// crossing. The closure resolves d.dcf at replay time — recovery recreates
// the decaf driver instance before replaying.
func (d *Driver) journalProbe() {
	if d.journal == nil {
		return
	}
	d.journal.Record(recovery.Entry{
		Key:  "probe",
		Name: "e1000_probe",
		Replay: func(ctx *kernel.Context) error {
			return d.rt.Upcall(ctx, "e1000_probe", func(uctx *kernel.Context) error {
				return decaf.ToError(decaf.Try(func() { d.dcf.probe(uctx, d.opts) }))
			}, d.Adapter)
		},
	})
}

// journalOpen records the interface bring-up (resource allocation, IRQ,
// device up); Stop removes it, so a recovery of a downed interface replays
// probe only.
func (d *Driver) journalOpen() {
	if d.journal == nil {
		return
	}
	d.journal.Record(recovery.Entry{
		Key:  "ifup",
		Name: "e1000_open",
		Replay: func(ctx *kernel.Context) error {
			err := d.rt.Upcall(ctx, "e1000_open", func(uctx *kernel.Context) error {
				return decaf.ToError(decaf.Try(func() { d.dcf.open(uctx) }))
			}, d.Adapter)
			if err != nil {
				return err
			}
			if d.dev.LinkUp() {
				d.Adapter.LinkUp = true
				d.setLinkCell(true)
				d.netdev.CarrierOn()
			}
			return nil
		},
	})
}

// RecoveryName implements recovery.Target.
func (d *Driver) RecoveryName() string { return "e1000" }

// BeginOutage implements recovery.Target: the net device holds TX frames
// (slow, not dead) and the watchdog stops crossing to the suspect decaf
// driver. Idempotent for retried restarts.
func (d *Driver) BeginOutage(ctx *kernel.Context) {
	d.recovering = true
	d.netdev.BeginRecovery(d.holdLimit)
}

// TeardownForRecovery implements recovery.Target: quiesce the pipelines
// (settled flushes deliver, faulted ones drop — both release their payload
// slots), then release the kernel-side data-path resources directly. The
// decaf side is suspect, so the nuclear runtime tears down without
// crossings; the journal replay of ifup rebuilds everything.
func (d *Driver) TeardownForRecovery(ctx *kernel.Context) error {
	d.txTimer.Stop()
	d.txFlushArmed = false
	// Frames queued but never submitted are casualties of the crash.
	if n := len(d.txQueue); n > 0 {
		d.txQueue = nil
		d.Adapter.Stats.TxErrors += uint64(n)
	}
	var xmitErr error
	deliver, drop := d.txCallbacks(ctx, &xmitErr)
	_ = d.txInFlight.Drain(ctx, deliver, drop)
	_ = d.rxInFlight.Drain(ctx, d.deliverRxFrames, d.dropRxFrames)
	_ = d.rt.DrainCrossings(ctx)

	d.nuc.down(ctx)
	d.nuc.freeIRQ(ctx)
	d.nuc.freeTxResources(ctx)
	d.nuc.freeRxResources(ctx)
	return nil
}

// ResetDecafState implements recovery.Target: discard the decaf-side half —
// a fresh shared adapter copy re-associated with the object trackers and a
// fresh decaf driver instance. The kernel-side adapter (the authoritative
// configuration the replayed probe re-synchronizes from) is untouched.
func (d *Driver) ResetDecafState(ctx *kernel.Context) error {
	if d.rt.Mode != xpc.ModeDecaf {
		return nil
	}
	d.rt.Unshare(d.Adapter)
	d.DecafAdapter = &Adapter{}
	if _, err := d.rt.Share(d.Adapter, d.DecafAdapter); err != nil {
		return err
	}
	d.dcf = newDecafDriver(d)
	return nil
}

// ResumeFromRecovery implements recovery.Target: disarm the proxy and
// replay the held frames through the restarted driver.
func (d *Driver) ResumeFromRecovery(ctx *kernel.Context) (replayed, dropped uint64) {
	d.recovering = false
	rep, drp := d.netdev.EndRecovery(ctx)
	return uint64(rep), uint64(drp)
}

// FailStop implements recovery.Target: restart budget exhausted — the
// device goes explicitly dead. Held frames drop, the carrier goes off (so
// Transmit now errors), and the watchdog stops; d.recovering stays set so
// no further decaf crossings are attempted.
func (d *Driver) FailStop(ctx *kernel.Context) {
	if d.watchdog != nil {
		d.watchdog.Stop()
	}
	d.netdev.AbortRecovery()
	d.Adapter.LinkUp = false
	d.setLinkCell(false)
}
