package e1000

import (
	"testing"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/e1000hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/ktime"
	"decafdrivers/internal/xpc"
)

func newDecafPathRig(t *testing.T, batchN int) *rig {
	t.Helper()
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 8<<20)
	kern := kernel.New(clock, bus)
	net := knet.New(kern)
	dev := e1000hw.New(bus, 9, [6]byte{0x00, 0x1B, 0x21, 0xAA, 0xBB, 0xCC})
	dev.SetLink(true)
	drv := New(kern, net, dev, Config{
		Mode: xpc.ModeDecaf, IRQ: 9,
		DataPath: xpc.DataPathDecaf, TxQueueDepth: batchN,
	})
	if batchN > 1 {
		drv.Runtime().SetTransport(xpc.BatchTransport{N: batchN})
	}
	return &rig{clock: clock, kern: kern, net: net, dev: dev, drv: drv}
}

// TestDecafDataPathBatchedTx checks that TX frames queue until the batch
// fills, cross to the decaf driver in one crossing, and still reach the
// hardware.
func TestDecafDataPathBatchedTx(t *testing.T) {
	const batchN = 4
	r := newDecafPathRig(t, batchN)
	r.load(t)
	r.up(t)
	r.drv.Runtime().ResetCounters()

	ctx := r.kern.NewContext("xmit")
	pkt := knet.NewPacket([6]byte{1, 2, 3, 4, 5, 6}, r.drv.Adapter.MAC, 0x0800, 100)
	for i := 0; i < batchN-1; i++ {
		if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.drv.Runtime().Counters().Trips(); got != 0 {
		t.Fatalf("crossed %d times before the batch filled", got)
	}
	if r.drv.Adapter.Stats.TxPackets != 0 {
		t.Fatal("frames reached hardware before the flush")
	}
	// The batchN-th frame fills the queue and flushes.
	if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil {
		t.Fatal(err)
	}
	c := r.drv.Runtime().Counters()
	if c.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1 crossing for the whole batch", c.Trips())
	}
	if c.BatchedCalls != batchN {
		t.Fatalf("BatchedCalls = %d, want %d", c.BatchedCalls, batchN)
	}
	if got := r.drv.Adapter.Stats.TxPackets; got != batchN {
		t.Fatalf("hardware transmitted %d frames, want %d", got, batchN)
	}
	if got := r.drv.DecafTxFrames(); got != batchN {
		t.Fatalf("decaf driver saw %d frames, want %d", got, batchN)
	}
}

// TestDecafDataPathTxCoalescingTimer checks that a partial TX queue is
// flushed by the coalescing window when traffic pauses, rather than waiting
// for the batch to fill.
func TestDecafDataPathTxCoalescingTimer(t *testing.T) {
	r := newDecafPathRig(t, 32)
	r.load(t)
	r.up(t)

	ctx := r.kern.NewContext("xmit")
	pkt := knet.NewPacket([6]byte{1, 2, 3, 4, 5, 6}, r.drv.Adapter.MAC, 0x0800, 100)
	for i := 0; i < 5; i++ {
		if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil {
			t.Fatal(err)
		}
	}
	if r.drv.Adapter.Stats.TxPackets != 0 {
		t.Fatal("partial queue transmitted before the window closed")
	}
	// Traffic pauses; the coalescing timer must flush the 5 queued frames.
	r.clock.Advance(2 * txCoalesceWindow)
	r.kern.DefaultWorkqueue().Drain()
	if got := r.drv.Adapter.Stats.TxPackets; got != 5 {
		t.Fatalf("hardware transmitted %d frames after the window, want 5", got)
	}
}

// TestDecafDataPathFlushOnStop checks that a partial TX queue flushes when
// the interface goes down rather than stranding frames.
func TestDecafDataPathFlushOnStop(t *testing.T) {
	r := newDecafPathRig(t, 8)
	r.load(t)
	r.up(t)

	ctx := r.kern.NewContext("xmit")
	pkt := knet.NewPacket([6]byte{1, 2, 3, 4, 5, 6}, r.drv.Adapter.MAC, 0x0800, 100)
	for i := 0; i < 3; i++ {
		if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil {
			t.Fatal(err)
		}
	}
	if r.drv.Adapter.Stats.TxPackets != 0 {
		t.Fatal("partial queue transmitted early")
	}
	if err := r.drv.NetDevice().Down(ctx); err != nil {
		t.Fatal(err)
	}
	if got := r.drv.Adapter.Stats.TxPackets; got != 3 {
		t.Fatalf("hardware transmitted %d frames after Down, want the 3 queued", got)
	}
}

// TestDecafDataPathRx checks that received frames cross through the decaf
// driver via the work-queue handoff and still reach the stack.
func TestDecafDataPathRx(t *testing.T) {
	r := newDecafPathRig(t, 8)
	r.load(t)
	r.up(t)
	r.drv.Runtime().ResetCounters()

	received := 0
	r.drv.NetDevice().SetRxSink(func(p *knet.Packet) { received++ })
	frame := knet.NewPacket(r.drv.Adapter.MAC, [6]byte{9, 8, 7, 6, 5, 4}, 0x0800, 256)
	for i := 0; i < 5; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatal("inject failed")
		}
	}
	if received != 0 {
		t.Fatal("frames delivered before the deferred flush ran")
	}
	r.kern.DefaultWorkqueue().Drain()
	if received != 5 {
		t.Fatalf("received %d frames, want 5", received)
	}
	if got := r.drv.DecafRxFrames(); got != 5 {
		t.Fatalf("decaf driver saw %d RX frames, want 5", got)
	}
	if got := r.drv.Runtime().Counters().Trips(); got == 0 || got > 5 {
		t.Fatalf("RX crossings = %d, want between 1 (batched) and 5", got)
	}
}

// TestDecafDataPathAsyncTransport drives the decaf TX path through an
// AsyncTransport end to end: probe (nested inline downcalls, batched EEPROM
// walk), depth-triggered FlushAsync submissions, and Quiesce settling the
// pipeline so every frame reaches the hardware.
func TestDecafDataPathAsyncTransport(t *testing.T) {
	const batchN = 4
	r := newDecafPathRig(t, batchN)
	r.drv.Runtime().SetTransport(xpc.NewAsyncTransport(xpc.AsyncConfig{Depth: 32, Batch: batchN}))
	defer r.drv.Runtime().SetTransport(nil)
	r.load(t)
	r.up(t)
	r.drv.Runtime().ResetCounters()

	ctx := r.kern.NewContext("xmit")
	pkt := knet.NewPacket([6]byte{1, 2, 3, 4, 5, 6}, r.drv.Adapter.MAC, 0x0800, 100)
	for i := 0; i < 3*batchN; i++ {
		if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.drv.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := r.drv.Adapter.Stats.TxPackets; got != 3*batchN {
		t.Fatalf("hardware transmitted %d frames, want %d", got, 3*batchN)
	}
	if got := r.drv.DecafTxFrames(); got != 3*batchN {
		t.Fatalf("decaf driver saw %d frames, want %d", got, 3*batchN)
	}
	c := r.drv.Runtime().Counters()
	if c.Trips() == 0 || c.Trips() > 3*batchN {
		t.Fatalf("Trips = %d, want coalesced crossings", c.Trips())
	}
	if c.InFlight != 0 {
		t.Fatalf("InFlight = %d after Quiesce", c.InFlight)
	}
}

// TestProbeEEPROMReadsBatched checks the probe-time EEPROM loop coalesces
// through the Batch downcall builder under a batched transport.
func TestProbeEEPROMReadsBatched(t *testing.T) {
	r := newDecafPathRig(t, 16)
	r.load(t)
	c := r.drv.Runtime().Counters()
	if c.PerCall["e1000_read_eeprom"] != EEPROMWords {
		t.Fatalf("EEPROM reads = %d, want %d", c.PerCall["e1000_read_eeprom"], EEPROMWords)
	}
	// The 64-word walk at MaxBatch 16 is 4 crossings; unbatched it was 64.
	if c.Downcalls >= EEPROMWords {
		t.Fatalf("Downcalls = %d, want the EEPROM walk coalesced (< %d)", c.Downcalls, EEPROMWords)
	}
}

// TestNucleusDataPathUnchanged checks the default configuration still never
// crosses on the data path — the paper's split.
func TestNucleusDataPathUnchanged(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	r.load(t)
	r.up(t)
	r.drv.Runtime().ResetCounters()

	ctx := r.kern.NewContext("xmit")
	pkt := knet.NewPacket([6]byte{1, 2, 3, 4, 5, 6}, r.drv.Adapter.MAC, 0x0800, 100)
	for i := 0; i < 10; i++ {
		if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.drv.Runtime().Counters().Trips(); got != 0 {
		t.Fatalf("nucleus data path crossed %d times", got)
	}
	if r.drv.Adapter.Stats.TxPackets != 10 {
		t.Fatalf("transmitted %d, want 10", r.drv.Adapter.Stats.TxPackets)
	}
}
