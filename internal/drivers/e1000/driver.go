package e1000

import (
	"errors"
	"fmt"
	"time"

	"decafdrivers/internal/decaf"
	"decafdrivers/internal/hw/e1000hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/recovery"
	"decafdrivers/internal/xpc"
)

// WatchdogPeriod is the E1000 watchdog interval: "a watchdog timer that
// executes every two seconds" (§3.1.3).
const WatchdogPeriod = 2 * time.Second

// flight is one in-flight decaf-data-path flush: the frames it carried and
// the staged payloads (ring slots or copy fallbacks) they crossed in.
type flight = xpc.Flight[*knet.Packet]

// pktData feeds frame bytes to xpc.StageFlight — staging a frame lands its
// bytes in a pre-registered ring buffer, the model of DMA into shared
// memory.
func pktData(p *knet.Packet) []byte { return p.Data }

// Driver is one bound E1000 instance: nucleus + decaf driver + XPC runtime.
type Driver struct {
	kern    *kernel.Kernel
	net     *knet.Subsystem
	dev     *e1000hw.Device
	rt      *xpc.Runtime
	helpers *decaf.Helpers
	irq     int
	opts    map[string]int

	// dataPath places the per-packet path: nucleus (default) or decaf.
	dataPath xpc.DataPath
	// txQueue holds frames awaiting submission through the decaf driver
	// when the data path is in the decaf driver; txDepth bounds it, and
	// the coalescing timer flushes a partial queue when traffic pauses.
	txQueue       []*knet.Packet
	txDepth       int
	txWindow      time.Duration
	txTimer       *kernel.KTimer
	txFlushArmed  bool
	txFlushQueued bool
	// txInFlight/rxInFlight hold flushes submitted through FlushAsync
	// whose frames await the decaf-side completion (nucleus transmit for
	// TX, stack delivery for RX); under an async transport they overlap
	// packet production with crossing execution. Each flight carries the
	// payload-ring slots its frames crossed in; the slots recycle when the
	// flush settles (slot lifetime = completion lifetime).
	txInFlight xpc.FlushPipeline[flight]
	rxInFlight xpc.FlushPipeline[flight]

	// Adapter is the kernel-side shared structure; DecafAdapter is the
	// user-side copy (the same object in native mode).
	Adapter      *Adapter
	DecafAdapter *Adapter

	nuc    *nucleus
	dcf    *decafDriver
	netdev *knet.NetDevice

	watchdog *kernel.KTimer

	// Recovery supervision state (EnableRecovery): journal records the
	// configuration-establishing crossings a restart replays; recovering
	// gates the watchdog and marks the outage window; holdLimit bounds the
	// net-device proxy's held-frame queue.
	journal    *recovery.StateJournal
	recovering bool
	holdLimit  int
}

// Config configures a driver instance.
type Config struct {
	// Mode selects native (kernel-only) or decaf (split) deployment.
	Mode xpc.Mode
	// IRQ is the device's interrupt number.
	IRQ int
	// ModuleParams are the insmod options validated by the decaf driver.
	ModuleParams map[string]int
	// DataPath places the per-packet path; DataPathNucleus (the paper's
	// split) is the default. DataPathDecaf routes each frame through the
	// decaf driver, submitting TX frames and RX drains as batches through
	// the runtime's transport.
	DataPath xpc.DataPath
	// TxQueueDepth is how many TX frames accumulate before a decaf
	// data-path driver flushes them in one batch; <=1 flushes per frame.
	TxQueueDepth int
	// TxCoalesceWindow bounds how long a queued TX frame may wait for its
	// batch to fill; 0 means the 2 ms default. Harnesses running at low
	// offered loads widen it so batches still fill.
	TxCoalesceWindow time.Duration
}

// New binds the driver to a device model. Call Module().Init via
// kernel.LoadModule to probe and register the interface.
func New(k *kernel.Kernel, net *knet.Subsystem, dev *e1000hw.Device, cfg Config) *Driver {
	d := &Driver{
		kern:     k,
		net:      net,
		dev:      dev,
		irq:      cfg.IRQ,
		opts:     cfg.ModuleParams,
		dataPath: cfg.DataPath,
		txDepth:  cfg.TxQueueDepth,
		txWindow: cfg.TxCoalesceWindow,
	}
	if d.txDepth < 1 {
		d.txDepth = 1
	}
	if d.txWindow <= 0 {
		d.txWindow = txCoalesceWindow
	}
	// The TX coalescing timer runs at high priority and so only enqueues
	// the flush work; the work item performs the batched crossing (§3.1.3).
	d.txTimer = k.NewTimer("e1000_tx_coalesce", func(tctx *kernel.Context) {
		d.txFlushArmed = false
		if len(d.txQueue) > 0 {
			d.scheduleTxFlush()
		}
	})
	d.rt = xpc.NewRuntime(k, "e1000", cfg.Mode, FieldMask())
	d.rt.DisableIRQs = []int{cfg.IRQ}
	d.helpers = decaf.NewHelpers(d.rt, k.Bus())
	d.Adapter = &Adapter{MsgEnable: 3, Mtu: 1500, TxRingSize: DefaultTxRing, RxRingSize: DefaultRxRing}
	if cfg.Mode == xpc.ModeNative {
		// Native: one copy of every structure, as in an unsplit driver.
		d.DecafAdapter = d.Adapter
	} else {
		d.DecafAdapter = &Adapter{}
		if _, err := d.rt.Share(d.Adapter, d.DecafAdapter); err != nil {
			panic(fmt.Sprintf("e1000: share adapter: %v", err))
		}
	}
	d.nuc = newNucleus(d)
	d.dcf = newDecafDriver(d)
	d.registerDowncalls()
	return d
}

// Runtime exposes the XPC runtime (crossing counters for the harness).
func (d *Driver) Runtime() *xpc.Runtime { return d.rt }

// NetDevice returns the registered interface (after module init).
func (d *Driver) NetDevice() *knet.NetDevice { return d.netdev }

// Module adapts the driver to the kernel module loader.
func (d *Driver) Module() kernel.Module { return (*e1000Module)(d) }

type e1000Module Driver

// ModuleName implements kernel.Module.
func (m *e1000Module) ModuleName() string { return "e1000" }

// Init is insmod: probe the device through the decaf driver, register the
// interface, arm the watchdog.
func (m *e1000Module) Init(ctx *kernel.Context) error {
	d := (*Driver)(m)
	d.dev.PCI.EnableBusMaster()

	err := d.rt.Upcall(ctx, "e1000_probe", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() { d.dcf.probe(uctx, d.opts) }))
	}, d.Adapter)
	if err != nil {
		return fmt.Errorf("e1000: probe: %w", err)
	}

	// The probe proposes "eth0"; the network core assigns the first free
	// ethN, as register_netdev does.
	d.Adapter.Name = d.net.FreeName("eth")
	nd, err := d.net.Register(d.Adapter.Name, int(d.Adapter.Mtu), (*e1000Ops)(d))
	if err != nil {
		return fmt.Errorf("e1000: register_netdev: %w", err)
	}
	nd.MAC = d.Adapter.MAC
	d.netdev = nd
	d.journalProbe()

	// The watchdog runs from a kernel timer; timers execute at high
	// priority, so the timer body only enqueues a work item, and the work
	// item performs the XPC to the decaf driver.
	d.watchdog = d.kern.NewTimer("e1000_watchdog", func(tctx *kernel.Context) {
		d.scheduleWatchdogWork()
	})
	d.watchdog.SchedulePeriodic(WatchdogPeriod)
	return nil
}

// Exit is rmmod.
func (m *e1000Module) Exit(ctx *kernel.Context) {
	d := (*Driver)(m)
	if d.watchdog != nil {
		d.watchdog.Stop()
	}
	if d.netdev != nil && d.netdev.IsUp() {
		_ = d.netdev.Down(ctx)
	}
	if d.netdev != nil {
		_ = d.net.Unregister(d.netdev.Name)
	}
	if d.rt.Mode == xpc.ModeDecaf {
		d.rt.Unshare(d.Adapter)
	}
}

func (d *Driver) scheduleWatchdogWork() {
	// During a recovery outage the decaf driver is suspect (or mid-rebuild):
	// the watchdog skips its upcall and resumes on the next period.
	if d.recovering {
		return
	}
	d.kern.DeferToWork(func(wctx *kernel.Context) {
		if d.recovering {
			return
		}
		_ = d.rt.UpcallHandler(wctx, "e1000_watchdog")
	})
}

// e1000Ops implements knet.DeviceOps: the kernel-facing entry points. Open
// and Stop forward to the decaf driver through kernel-side stubs; StartXmit
// stays in the nucleus (critical root).
type e1000Ops Driver

// Open implements knet.DeviceOps by upcalling e1000_open. During a recovery
// outage the decaf driver is suspect or mid-rebuild, so control-plane ops
// refuse (EBUSY-style) rather than crossing — only the supervisor's journal
// replay touches the decaf side until resume.
func (o *e1000Ops) Open(ctx *kernel.Context) error {
	d := (*Driver)(o)
	if d.recovering {
		return fmt.Errorf("e1000: open while the driver is recovering")
	}
	err := d.rt.Upcall(ctx, "e1000_open", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() { d.dcf.open(uctx) }))
	}, d.Adapter)
	if err != nil {
		return err
	}
	// Immediate link evaluation, as the C driver does after e1000_up. The
	// shared cell mirrors the kernel-side transition so the watchdog body
	// (which may run in another process) compares against current state.
	if d.dev.LinkUp() {
		d.Adapter.LinkUp = true
		d.setLinkCell(true)
		d.netdev.CarrierOn()
	}
	d.journalOpen()
	return nil
}

// Stop implements knet.DeviceOps by upcalling e1000_close. Queued TX frames
// flush and transmit first so none are stranded behind the teardown, while
// in-flight RX flushes settle and drop — frames are not delivered into a
// closing interface, matching the rtl8139 purge-on-stop semantics.
func (o *e1000Ops) Stop(ctx *kernel.Context) error {
	d := (*Driver)(o)
	if d.recovering {
		return fmt.Errorf("e1000: stop while the driver is recovering")
	}
	d.txTimer.Stop()
	d.txFlushArmed = false
	_ = d.rxInFlight.Drain(ctx, func(f flight) {
		d.dropRxFrames(f, nil)
	}, d.dropRxFrames)
	_ = d.Quiesce(ctx)
	if d.journal != nil {
		d.journal.Remove("ifup")
	}
	return d.rt.Upcall(ctx, "e1000_close", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() { d.dcf.close(uctx) }))
	}, d.Adapter)
}

// StartXmit implements knet.DeviceOps. In the default nucleus data path the
// frame never crosses to user level; in the decaf data path it queues for a
// batched crossing through the decaf driver.
func (o *e1000Ops) StartXmit(ctx *kernel.Context, pkt *knet.Packet) error {
	d := (*Driver)(o)
	if d.decafDataPath() {
		return d.xmitViaDecaf(ctx, pkt)
	}
	return d.nuc.xmitFrame(ctx, pkt)
}

func (d *Driver) decafDataPath() bool {
	return d.dataPath == xpc.DataPathDecaf && d.rt.Mode == xpc.ModeDecaf
}

// txCoalesceWindow bounds how long a queued TX frame may wait for its batch
// to fill before the coalescing timer flushes the queue, so a traffic pause
// never strands frames below TxQueueDepth.
const txCoalesceWindow = 2 * time.Millisecond

// xmitViaDecaf queues the frame on the TX batch; once TxQueueDepth frames
// accumulate (or the coalescing window closes) they cross to the decaf
// driver in one flush. Under a batched transport that flush is a single
// crossing for the whole queue.
func (d *Driver) xmitViaDecaf(ctx *kernel.Context, pkt *knet.Packet) error {
	d.txQueue = append(d.txQueue, pkt)
	if len(d.txQueue) >= d.txDepth {
		return d.FlushTx(ctx)
	}
	if !d.txFlushArmed && !d.txFlushQueued {
		d.txFlushArmed = true
		d.txTimer.Schedule(d.txWindow)
	}
	return nil
}

// scheduleTxFlush queues the TX flush in process context. At most one flush
// is in flight at a time.
func (d *Driver) scheduleTxFlush() {
	if d.txFlushQueued {
		return
	}
	d.txFlushQueued = true
	d.kern.DeferToWork(func(wctx *kernel.Context) {
		d.txFlushQueued = false
		_ = d.FlushTx(wctx)
	})
}

// maxTxInFlight bounds how many submitted-but-unreaped flushes may overlap
// under an async transport before the caller blocks on the oldest.
const maxTxInFlight = 4

// FlushTx submits every queued TX frame through the decaf driver via
// FlushAsync, then reaps every in-flight flush whose crossing has (virtually)
// completed and hands its frames to the nucleus for transmission. Under an
// inline transport the flush settles during submission, so frames reach the
// hardware in the same call — the seed behavior; under an async transport
// the caller keeps producing while the decaf side drains the crossing, and
// frames follow one reap behind. A no-op outside the decaf data path.
func (d *Driver) FlushTx(ctx *kernel.Context) error {
	if len(d.txQueue) > 0 {
		pending := d.txQueue
		d.txQueue = nil
		// The flush consumes any armed coalescing timer: it should fire
		// only when a partial queue goes stale, not mid-stream between
		// full batches.
		if d.txFlushArmed {
			d.txTimer.Stop()
			d.txFlushArmed = false
		}
		fl := xpc.StageFlight(d.rt, pending, pktData)
		b := d.rt.Batch(ctx)
		for i := range pending {
			b.UpcallHandlerPayload("e1000_xmit_frame", fl.Payloads[i])
		}
		d.txInFlight.Push(b.FlushAsync(), fl)
	}
	return d.absorbContainedFault(d.reapTx(ctx, d.txInFlight.Len() >= maxTxInFlight))
}

// absorbContainedFault maps a fault-contained flush outcome to success when
// a recovery supervisor is attached: the flush's frames were already dropped
// with accounting, the supervisor owns the restart, and the shadow-driver
// contract is that kernel callers see a slow device, never a decaf crash.
// Without supervision (or for ordinary errors) the outcome propagates as
// before.
func (d *Driver) absorbContainedFault(err error) error {
	if err == nil || d.journal == nil {
		return err
	}
	if xpc.IsUserFault(err) || errors.Is(err, xpc.ErrCrossingAborted) {
		return nil
	}
	return err
}

// txCallbacks builds the TX pipeline's deliver/drop pair: successful
// flushes hand their frames to the nucleus (the first transmit error lands
// in *errp), failed or faulted flushes drop theirs into TxErrors — the
// kernel survives. Both arms recycle the flight's payload slots: the flush
// has settled, so slot lifetime ends here.
func (d *Driver) txCallbacks(ctx *kernel.Context, errp *error) (deliver func(flight), drop func(flight, error)) {
	deliver = func(f flight) {
		for _, pkt := range f.Items {
			if xerr := d.nuc.xmitFrame(ctx, pkt); xerr != nil && *errp == nil {
				*errp = xerr
			}
		}
		f.Release(d.rt)
	}
	drop = func(f flight, _ error) {
		d.Adapter.Stats.TxErrors += uint64(len(f.Items))
		f.Release(d.rt)
	}
	return deliver, drop
}

// deliverRxFrames/dropRxFrames are the RX pipeline's deliver/drop pair;
// both recycle the flight's payload slots.
func (d *Driver) deliverRxFrames(f flight) {
	for _, pkt := range f.Items {
		d.netdev.Receive(pkt)
	}
	f.Release(d.rt)
}

func (d *Driver) dropRxFrames(f flight, _ error) {
	d.Adapter.Stats.RxDropped += uint64(len(f.Items))
	f.Release(d.rt)
}

// reapTx transmits the frames of every settled in-flight flush; with force,
// it first waits for the oldest flush (charging the caller any residual
// stall) so the pipeline depth stays bounded.
func (d *Driver) reapTx(ctx *kernel.Context, force bool) error {
	var xmitErr error
	deliver, drop := d.txCallbacks(ctx, &xmitErr)
	err := d.txInFlight.Reap(ctx, d.kern.Clock().Now(), force, deliver, drop)
	if err == nil {
		err = xmitErr
	}
	return err
}

// Quiesce flushes the partial TX queue and waits for every in-flight decaf
// crossing, transmitting reaped TX frames and delivering reaped RX frames.
// Workload harnesses call it before closing a measurement phase so async
// completions are settled.
func (d *Driver) Quiesce(ctx *kernel.Context) error {
	err := d.FlushTx(ctx)
	var xmitErr error
	deliver, drop := d.txCallbacks(ctx, &xmitErr)
	if derr := d.txInFlight.Drain(ctx, deliver, drop); err == nil {
		if derr == nil {
			derr = xmitErr
		}
		err = derr
	}
	_ = d.rxInFlight.Drain(ctx, d.deliverRxFrames, d.dropRxFrames)
	if derr := d.rt.DrainCrossings(ctx); derr != nil && err == nil {
		err = derr
	}
	return err
}

// deliverRx hands drained RX frames up the stack. In the decaf data path the
// crossing cannot happen in IRQ context, so a work item submits the batched
// upcalls — the work-queue handoff of §3.1.3 applied to the receive path —
// and delivery follows each flush's completion: inline transports settle
// during submission (delivery in the same work item, the seed behavior),
// async transports overlap the crossing with further interrupt drains.
func (d *Driver) deliverRx(frames []*knet.Packet) {
	if len(frames) == 0 {
		return
	}
	if !d.decafDataPath() {
		for _, f := range frames {
			d.netdev.Receive(f)
		}
		return
	}
	d.kern.DeferToWork(func(wctx *kernel.Context) {
		fl := xpc.StageFlight(d.rt, frames, pktData)
		b := d.rt.Batch(wctx)
		for i := range frames {
			b.UpcallHandlerPayload("e1000_rx_frame", fl.Payloads[i])
		}
		d.rxInFlight.Push(b.FlushAsync(), fl)
		d.reapRx(wctx, d.rxInFlight.Len() >= maxRxInFlight)
	})
}

// maxRxInFlight bounds the RX pipeline depth under an async transport.
const maxRxInFlight = 4

// reapRx delivers the frames of every settled in-flight RX flush; with
// force, it first waits for the oldest. A faulted decaf driver drops its
// own drain; the kernel survives.
func (d *Driver) reapRx(ctx *kernel.Context, force bool) {
	_ = d.rxInFlight.Reap(ctx, d.kern.Clock().Now(), force, d.deliverRxFrames, d.dropRxFrames)
}
