package e1000

import (
	"fmt"
	"time"

	"decafdrivers/internal/decaf"
	"decafdrivers/internal/hw/e1000hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/xpc"
)

// WatchdogPeriod is the E1000 watchdog interval: "a watchdog timer that
// executes every two seconds" (§3.1.3).
const WatchdogPeriod = 2 * time.Second

// Driver is one bound E1000 instance: nucleus + decaf driver + XPC runtime.
type Driver struct {
	kern    *kernel.Kernel
	net     *knet.Subsystem
	dev     *e1000hw.Device
	rt      *xpc.Runtime
	helpers *decaf.Helpers
	irq     int
	opts    map[string]int

	// Adapter is the kernel-side shared structure; DecafAdapter is the
	// user-side copy (the same object in native mode).
	Adapter      *Adapter
	DecafAdapter *Adapter

	nuc    *nucleus
	dcf    *decafDriver
	netdev *knet.NetDevice

	watchdog *kernel.KTimer
}

// Config configures a driver instance.
type Config struct {
	// Mode selects native (kernel-only) or decaf (split) deployment.
	Mode xpc.Mode
	// IRQ is the device's interrupt number.
	IRQ int
	// ModuleParams are the insmod options validated by the decaf driver.
	ModuleParams map[string]int
}

// New binds the driver to a device model. Call Module().Init via
// kernel.LoadModule to probe and register the interface.
func New(k *kernel.Kernel, net *knet.Subsystem, dev *e1000hw.Device, cfg Config) *Driver {
	d := &Driver{
		kern: k,
		net:  net,
		dev:  dev,
		irq:  cfg.IRQ,
		opts: cfg.ModuleParams,
	}
	d.rt = xpc.NewRuntime(k, "e1000", cfg.Mode, FieldMask())
	d.rt.DisableIRQs = []int{cfg.IRQ}
	d.helpers = decaf.NewHelpers(d.rt, k.Bus())
	d.Adapter = &Adapter{MsgEnable: 3, Mtu: 1500, TxRingSize: DefaultTxRing, RxRingSize: DefaultRxRing}
	if cfg.Mode == xpc.ModeNative {
		// Native: one copy of every structure, as in an unsplit driver.
		d.DecafAdapter = d.Adapter
	} else {
		d.DecafAdapter = &Adapter{}
		if _, err := d.rt.Share(d.Adapter, d.DecafAdapter); err != nil {
			panic(fmt.Sprintf("e1000: share adapter: %v", err))
		}
	}
	d.nuc = newNucleus(d)
	d.dcf = newDecafDriver(d)
	return d
}

// Runtime exposes the XPC runtime (crossing counters for the harness).
func (d *Driver) Runtime() *xpc.Runtime { return d.rt }

// NetDevice returns the registered interface (after module init).
func (d *Driver) NetDevice() *knet.NetDevice { return d.netdev }

// Module adapts the driver to the kernel module loader.
func (d *Driver) Module() kernel.Module { return (*e1000Module)(d) }

type e1000Module Driver

// ModuleName implements kernel.Module.
func (m *e1000Module) ModuleName() string { return "e1000" }

// Init is insmod: probe the device through the decaf driver, register the
// interface, arm the watchdog.
func (m *e1000Module) Init(ctx *kernel.Context) error {
	d := (*Driver)(m)
	d.dev.PCI.EnableBusMaster()

	err := d.rt.Upcall(ctx, "e1000_probe", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() { d.dcf.probe(uctx, d.opts) }))
	}, d.Adapter)
	if err != nil {
		return fmt.Errorf("e1000: probe: %w", err)
	}

	// The probe proposes "eth0"; the network core assigns the first free
	// ethN, as register_netdev does.
	d.Adapter.Name = d.net.FreeName("eth")
	nd, err := d.net.Register(d.Adapter.Name, int(d.Adapter.Mtu), (*e1000Ops)(d))
	if err != nil {
		return fmt.Errorf("e1000: register_netdev: %w", err)
	}
	nd.MAC = d.Adapter.MAC
	d.netdev = nd

	// The watchdog runs from a kernel timer; timers execute at high
	// priority, so the timer body only enqueues a work item, and the work
	// item performs the XPC to the decaf driver.
	d.watchdog = d.kern.NewTimer("e1000_watchdog", func(tctx *kernel.Context) {
		d.scheduleWatchdogWork()
	})
	d.watchdog.SchedulePeriodic(WatchdogPeriod)
	return nil
}

// Exit is rmmod.
func (m *e1000Module) Exit(ctx *kernel.Context) {
	d := (*Driver)(m)
	if d.watchdog != nil {
		d.watchdog.Stop()
	}
	if d.netdev != nil && d.netdev.IsUp() {
		_ = d.netdev.Down(ctx)
	}
	if d.netdev != nil {
		_ = d.net.Unregister(d.netdev.Name)
	}
	if d.rt.Mode == xpc.ModeDecaf {
		d.rt.Unshare(d.Adapter)
	}
}

func (d *Driver) scheduleWatchdogWork() {
	d.kern.DeferToWork(func(wctx *kernel.Context) {
		_ = d.rt.Upcall(wctx, "e1000_watchdog", func(uctx *kernel.Context) error {
			return decaf.ToError(decaf.Try(func() { d.dcf.watchdog(uctx) }))
		}, d.Adapter)
	})
}

// e1000Ops implements knet.DeviceOps: the kernel-facing entry points. Open
// and Stop forward to the decaf driver through kernel-side stubs; StartXmit
// stays in the nucleus (critical root).
type e1000Ops Driver

// Open implements knet.DeviceOps by upcalling e1000_open.
func (o *e1000Ops) Open(ctx *kernel.Context) error {
	d := (*Driver)(o)
	err := d.rt.Upcall(ctx, "e1000_open", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() { d.dcf.open(uctx) }))
	}, d.Adapter)
	if err != nil {
		return err
	}
	// Immediate link evaluation, as the C driver does after e1000_up.
	if d.dev.LinkUp() {
		d.Adapter.LinkUp = true
		d.netdev.CarrierOn()
	}
	return nil
}

// Stop implements knet.DeviceOps by upcalling e1000_close.
func (o *e1000Ops) Stop(ctx *kernel.Context) error {
	d := (*Driver)(o)
	return d.rt.Upcall(ctx, "e1000_close", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() { d.dcf.close(uctx) }))
	}, d.Adapter)
}

// StartXmit implements knet.DeviceOps in the nucleus: the data path never
// crosses to user level.
func (o *e1000Ops) StartXmit(ctx *kernel.Context, pkt *knet.Packet) error {
	d := (*Driver)(o)
	return d.nuc.xmitFrame(ctx, pkt)
}
