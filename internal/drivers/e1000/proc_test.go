//go:build unix

package e1000

import (
	"os"
	"testing"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/e1000hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/ktime"
	"decafdrivers/internal/recovery"
	"decafdrivers/internal/xpc"
)

// TestMain routes the re-exec'd test binary into the decaf worker loop for
// the process-separated transport fixtures below.
func TestMain(m *testing.M) {
	xpc.MaybeRunWorker()
	os.Exit(m.Run())
}

// newProcPathRig is newDecafPathRig with the decaf side in a real worker
// process.
func newProcPathRig(t *testing.T, batchN int) (*rig, *xpc.ProcTransport) {
	t.Helper()
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 8<<20)
	kern := kernel.New(clock, bus)
	net := knet.New(kern)
	dev := e1000hw.New(bus, 9, [6]byte{0x00, 0x1B, 0x21, 0xAA, 0xBB, 0xCC})
	dev.SetLink(true)
	drv := New(kern, net, dev, Config{
		Mode: xpc.ModeDecaf, IRQ: 9,
		DataPath: xpc.DataPathDecaf, TxQueueDepth: batchN,
	})
	pt, err := xpc.NewProcTransport(xpc.ProcConfig{Batch: batchN})
	if err != nil {
		t.Fatal(err)
	}
	drv.Runtime().SetTransport(pt)
	t.Cleanup(func() { drv.Runtime().SetTransport(nil) })
	return &rig{clock: clock, kern: kern, net: net, dev: dev, drv: drv}, pt
}

// TestProcRecoveryRestoresConfigAfterDataPathFault is the process-separated
// twin of the recovery fixture: the injected TX fault SIGKILLs the worker
// process, the supervisor respawns it and replays the journal over the real
// boundary, and the rebuilt configuration matches the pre-fault one.
func TestProcRecoveryRestoresConfigAfterDataPathFault(t *testing.T) {
	const batchN = 4
	r, pt := newProcPathRig(t, batchN)
	j := recovery.NewStateJournal()
	r.drv.EnableRecovery(j, 0)
	r.load(t)
	r.up(t)
	sup := recovery.NewSupervisor(r.kern, r.drv, j, recovery.Config{})
	sup.Attach()

	bootPID := pt.WorkerPID()
	if bootPID == 0 {
		t.Fatal("no worker after boot crossings")
	}
	pre := *r.drv.Adapter
	r.drv.Runtime().SetFaultInjector(workloadFaultNth("e1000_xmit_frame", 2))

	ctx := r.kern.NewContext("xmit")
	pkt := knet.NewPacket([6]byte{1, 2, 3, 4, 5, 6}, r.drv.Adapter.MAC, 0x0800, 100)
	for i := 0; i < batchN; i++ {
		if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil {
			t.Fatalf("fault surfaced to kernel caller: %v", err)
		}
	}
	r.kern.DefaultWorkqueue().Drain()

	st := sup.Stats()
	if st.Recoveries != 1 || st.State != recovery.StateMonitoring || st.Replayed != 2 {
		t.Fatalf("supervisor stats = %+v", st)
	}
	c := r.drv.Runtime().Counters()
	if c.WorkerDeaths < 1 || c.WorkerRespawns < 1 || !c.WorkerAlive {
		t.Fatalf("worker deaths=%d respawns=%d alive=%v: the restart was not physical",
			c.WorkerDeaths, c.WorkerRespawns, c.WorkerAlive)
	}
	if pid := pt.WorkerPID(); pid == bootPID {
		t.Fatalf("worker pid %d unchanged across recovery", pid)
	}
	a := r.drv.Adapter
	if a.MAC != pre.MAC || a.TxRingSize != pre.TxRingSize || a.EEPROM != pre.EEPROM || a.PhyID != pre.PhyID {
		t.Fatalf("post-recovery config differs:\npre  %+v\npost %+v", pre, *a)
	}
	for i := 0; i < batchN; i++ {
		if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil {
			t.Fatalf("transmit after recovery: %v", err)
		}
	}
	if r.drv.Adapter.Stats.TxPackets == 0 {
		t.Fatal("no frames transmitted after recovery")
	}
}

// TestProcDecafDataPathExecutesInWorker: with the decaf data path under the
// process-separated transport, the per-frame TX bodies execute in the worker
// process — the served-call counter proves the dispatch, and the frame count
// the worker accumulated is visible through the shared state cells.
func TestProcDecafDataPathExecutesInWorker(t *testing.T) {
	const batchN = 4
	r, pt := newProcPathRig(t, batchN)
	r.load(t)
	r.up(t)
	r.drv.Runtime().ResetCounters()

	ctx := r.kern.NewContext("xmit")
	pkt := knet.NewPacket([6]byte{1, 2, 3, 4, 5, 6}, r.drv.Adapter.MAC, 0x0800, 100)
	for i := 0; i < batchN; i++ {
		if err := r.drv.NetDevice().Transmit(ctx, pkt); err != nil {
			t.Fatal(err)
		}
	}
	if pid := pt.WorkerPID(); pid <= 0 || pid == os.Getpid() {
		t.Fatalf("worker pid = %d, want a live separate process", pid)
	}
	c := r.drv.Runtime().Counters()
	if c.WorkerServedCalls != batchN {
		t.Fatalf("WorkerServedCalls = %d, want %d (every TX body in the worker)", c.WorkerServedCalls, batchN)
	}
	if got := r.drv.DecafTxFrames(); got != batchN {
		t.Fatalf("DecafTxFrames = %d, want %d (the worker's shm writes)", got, batchN)
	}
	if got := r.drv.Adapter.Stats.TxPackets; got != batchN {
		t.Fatalf("hardware transmitted %d frames, want %d", got, batchN)
	}
}

// TestProcWatchdogRunsInWorker: the watchdog body executes in the worker and
// reaches the device through a real nested downcall — a FrameDown round trip
// mid-call, not a library shortcut.
func TestProcWatchdogRunsInWorker(t *testing.T) {
	r, _ := newProcPathRig(t, 1)
	r.load(t)
	r.up(t)
	runs := r.drv.WatchdogRuns()
	r.drv.Runtime().ResetCounters()

	r.clock.Advance(WatchdogPeriod)
	r.kern.DefaultWorkqueue().Drain()

	if got := r.drv.WatchdogRuns(); got != runs+1 {
		t.Fatalf("WatchdogRuns = %d, want %d", got, runs+1)
	}
	c := r.drv.Runtime().Counters()
	if c.WorkerServedCalls == 0 {
		t.Fatal("watchdog body did not execute in the worker")
	}
	if c.WorkerDowncalls == 0 {
		t.Fatal("the watchdog's link-status read did not cross as a worker downcall")
	}
	if c.PerCall["e1000_watchdog"] != 1 {
		t.Fatalf("watchdog upcalls = %d, want 1", c.PerCall["e1000_watchdog"])
	}
}
