package e1000

import (
	"fmt"

	"decafdrivers/internal/decaf"
	"decafdrivers/internal/hw/e1000hw"
	"decafdrivers/internal/kernel"
)

// decafDriver is the user-level managed half of the split driver's
// control plane: probe, open/close, PHY and EEPROM management and parameter
// validation, all written in the exception style of the case study. Its
// methods operate on the decaf copy of the adapter and reach the kernel
// through downcall stubs. The steady-state bodies — the watchdog and the
// decaf data path's per-frame work — live in the handler table instead
// (handlers.go), so a process-separated transport executes them in the
// worker's address space.
//
//decaf:boundary
type decafDriver struct {
	drv *Driver

	// params is the module-parameter class hierarchy from §5.1.
	params []decaf.Param
}

func newDecafDriver(d *Driver) *decafDriver {
	return &decafDriver{
		drv: d,
		params: []decaf.Param{
			&decaf.RangeParam{BaseParam: decaf.BaseParam{ParamName: "TxDescriptors", Default: DefaultTxRing}, Min: MinRing, Max: MaxRing},
			&decaf.RangeParam{BaseParam: decaf.BaseParam{ParamName: "RxDescriptors", Default: DefaultRxRing}, Min: MinRing, Max: MaxRing},
			decaf.NewSetParam("Duplex", 0, 0, 1, 2),
			decaf.NewSetParam("FlowControl", 3, 0, 1, 2, 3),
			&decaf.BaseParam{ParamName: "Debug", Default: 3},
		},
	}
}

// adapter returns the decaf-side adapter copy.
func (dd *decafDriver) adapter() *Adapter { return dd.drv.DecafAdapter }

// checkOptions validates module parameters using the class hierarchy; an
// out-of-range or out-of-set value throws InvalidParameterException
// (e1000_param.c rewritten as classes, §5.1).
func (dd *decafDriver) checkOptions(opts map[string]int) {
	resolved := decaf.ValidateAll(dd.params, opts)
	a := dd.adapter()
	a.TxRingSize = uint32(resolved["TxDescriptors"])
	a.RxRingSize = uint32(resolved["RxDescriptors"])
	a.FlowControl = uint32(resolved["FlowControl"])
	a.MsgEnable = int32(resolved["Debug"])
}

// readEEPROM fills the adapter's EEPROM shadow through the Batch downcall
// builder: under the default per-call transport each word still costs one
// crossing (the Table 3 measurement), but under a batched or async
// transport the walk coalesces into one crossing per MaxBatch-word chunk,
// cutting init crossings from one-per-word to one-per-chunk. A failed read
// throws.
func (dd *decafDriver) readEEPROM(uctx *kernel.Context) {
	a := dd.adapter()
	var words [EEPROMWords]uint16
	b := dd.drv.rt.Batch(uctx)
	for addr := uint32(0); addr < EEPROMWords; addr++ {
		addr := addr
		b.Downcall("e1000_read_eeprom", func(kctx *kernel.Context) error {
			w, err := dd.drv.nuc.readEEPROMWord(kctx, addr)
			if err != nil {
				return fmt.Errorf("word %d: %w", addr, err)
			}
			words[addr] = w
			return nil
		})
	}
	if err := b.Flush(); err != nil {
		decaf.ThrowCause(HWException, err, "EEPROM read failed")
	}
	copy(a.EEPROM[:], words[:])
}

// validateEEPROMChecksum throws when the shadow's words do not sum to the
// required signature — the error path fault-injection tests exercise.
func (dd *decafDriver) validateEEPROMChecksum() {
	var sum uint16
	for _, w := range dd.adapter().EEPROM {
		sum += w
	}
	if sum != e1000hw.EEPROMChecksum {
		decaf.Throw(HWException, "EEPROM checksum %#x != %#x", sum, e1000hw.EEPROMChecksum)
	}
}

// macFromEEPROM decodes the hardware address from the shadow.
func (dd *decafDriver) macFromEEPROM() {
	a := dd.adapter()
	for i := 0; i < 3; i++ {
		w := a.EEPROM[i]
		a.MAC[2*i] = byte(w)
		a.MAC[2*i+1] = byte(w >> 8)
	}
}

// readPhyReg is the exception-style PHY accessor of Figure 5: the C version
// returned an error code the caller had to test and propagate; this version
// throws, so call sites shrink to bare calls.
func (dd *decafDriver) readPhyReg(uctx *kernel.Context, reg uint32) uint16 {
	var val uint16
	var code int
	err := dd.drv.rt.Downcall(uctx, "e1000_read_phy_reg", func(kctx *kernel.Context) error {
		val, code = dd.drv.nuc.phyRead(kctx, reg)
		return nil
	})
	if err != nil {
		decaf.ThrowCause(HWException, err, "phy read downcall failed")
	}
	decaf.Check(HWException, code, fmt.Sprintf("read_phy_reg(%#x)", reg))
	return val
}

// writePhyReg is the write twin of readPhyReg.
func (dd *decafDriver) writePhyReg(uctx *kernel.Context, reg uint32, v uint16) {
	var code int
	err := dd.drv.rt.Downcall(uctx, "e1000_write_phy_reg", func(kctx *kernel.Context) error {
		code = dd.drv.nuc.phyWrite(kctx, reg, v)
		return nil
	})
	if err != nil {
		decaf.ThrowCause(HWException, err, "phy write downcall failed")
	}
	decaf.Check(HWException, code, fmt.Sprintf("write_phy_reg(%#x)", reg))
}

// configDSPAfterLinkChange is the Figure 5 function rewritten with
// exceptions: the original C checked every return value; here failures
// propagate automatically.
func (dd *decafDriver) configDSPAfterLinkChange(uctx *kernel.Context) {
	savedData := dd.readPhyReg(uctx, 0x15) // 0x2F5B truncated to 5-bit MII space
	dd.writePhyReg(uctx, 0x15, 0x0003)
	dd.drv.helpers.Msleep(uctx, 20)
	dd.writePhyReg(uctx, 0x00, 0x0040) // IGP01E1000_IEEE_FORCE_GIGA
	dd.writePhyReg(uctx, 0x15, savedData)
}

// powerUpPhy brings the PHY out of power-down.
func (dd *decafDriver) powerUpPhy(uctx *kernel.Context) {
	ctrl := dd.readPhyReg(uctx, e1000hw.PhyCtrl)
	dd.writePhyReg(uctx, e1000hw.PhyCtrl, ctrl&^0x0800) // clear POWER_DOWN
}

// probe is the decaf-driver body of e1000_probe: reset, EEPROM validation,
// MAC extraction, PHY identification, configuration-space snapshot.
func (dd *decafDriver) probe(uctx *kernel.Context, opts map[string]int) {
	dd.checkOptions(opts)

	if err := dd.drv.rt.Downcall(uctx, "e1000_reset_hw", func(kctx *kernel.Context) error {
		dd.drv.nuc.resetHW(kctx)
		return nil
	}); err != nil {
		decaf.ThrowCause(HWException, err, "reset failed")
	}
	dd.drv.helpers.Msleep(uctx, 100) // post-reset settle, as the C driver waits

	dd.readEEPROM(uctx)
	dd.validateEEPROMChecksum()
	dd.macFromEEPROM()

	id1 := dd.readPhyReg(uctx, e1000hw.PhyID1)
	id2 := dd.readPhyReg(uctx, e1000hw.PhyID2)
	dd.adapter().PhyID = uint32(id1)<<16 | uint32(id2)

	if err := dd.drv.rt.Downcall(uctx, "pci_save_state", func(kctx *kernel.Context) error {
		dd.drv.nuc.snapshotConfigSpace(kctx)
		return nil
	}, dd.drv.Adapter); err != nil {
		decaf.ThrowCause(HWException, err, "config-space snapshot failed")
	}
	dd.adapter().Name = "eth0"
	dd.drv.helpers.Msleep(uctx, 200) // autonegotiation start, per the C driver
}

// open is the paper's Figure 4, verbatim in structure: nested handlers so a
// failure at any stage releases exactly the resources acquired before it,
// in reverse order, then rethrows.
func (dd *decafDriver) open(uctx *kernel.Context) {
	drv := dd.drv
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(*decaf.Exception); ok {
				dd.reset(uctx)
				decaf.Rethrow(e)
			}
			panic(r)
		}
	}()

	/* allocate transmit descriptors */
	if err := drv.rt.Downcall(uctx, "e1000_setup_all_tx_resources", func(kctx *kernel.Context) error {
		return drv.nuc.setupTxResources(kctx)
	}); err != nil {
		decaf.ThrowCause(HWException, err, "tx resources")
	}
	decaf.TryCatch(func() {
		/* allocate receive descriptors */
		if err := drv.rt.Downcall(uctx, "e1000_setup_all_rx_resources", func(kctx *kernel.Context) error {
			return drv.nuc.setupRxResources(kctx)
		}); err != nil {
			decaf.ThrowCause(HWException, err, "rx resources")
		}
		decaf.TryCatch(func() {
			if err := drv.rt.Downcall(uctx, "e1000_request_irq", func(kctx *kernel.Context) error {
				return drv.nuc.requestIRQ(kctx)
			}); err != nil {
				decaf.ThrowCause(HWException, err, "request_irq")
			}
			dd.powerUpPhy(uctx)
			dd.configDSPAfterLinkChange(uctx)
			if err := drv.rt.Downcall(uctx, "e1000_up", func(kctx *kernel.Context) error {
				drv.nuc.up(kctx)
				return nil
			}); err != nil {
				decaf.ThrowCause(HWException, err, "up")
			}
		}, func(e *decaf.Exception) {
			_ = drv.rt.Downcall(uctx, "e1000_free_all_rx_resources", func(kctx *kernel.Context) error {
				drv.nuc.freeRxResources(kctx)
				return nil
			})
			decaf.Rethrow(e)
		})
	}, func(e *decaf.Exception) {
		_ = drv.rt.Downcall(uctx, "e1000_free_all_tx_resources", func(kctx *kernel.Context) error {
			drv.nuc.freeTxResources(kctx)
			return nil
		})
		decaf.Rethrow(e)
	})
}

// reset quiesces and reinitializes the device after a failure (e1000_reset).
func (dd *decafDriver) reset(uctx *kernel.Context) {
	_ = dd.drv.rt.Downcall(uctx, "e1000_reset", func(kctx *kernel.Context) error {
		dd.drv.nuc.down(kctx)
		dd.drv.nuc.resetHW(kctx)
		return nil
	})
}

// close tears the interface down (e1000_close).
func (dd *decafDriver) close(uctx *kernel.Context) {
	drv := dd.drv
	_ = drv.rt.Downcall(uctx, "e1000_down", func(kctx *kernel.Context) error {
		drv.nuc.down(kctx)
		return nil
	})
	_ = drv.rt.Downcall(uctx, "e1000_free_irq", func(kctx *kernel.Context) error {
		drv.nuc.freeIRQ(kctx)
		return nil
	})
	_ = drv.rt.Downcall(uctx, "e1000_free_all_tx_resources", func(kctx *kernel.Context) error {
		drv.nuc.freeTxResources(kctx)
		return nil
	})
	_ = drv.rt.Downcall(uctx, "e1000_free_all_rx_resources", func(kctx *kernel.Context) error {
		drv.nuc.freeRxResources(kctx)
		return nil
	})
}

