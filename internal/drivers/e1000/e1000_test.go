package e1000

import (
	"errors"
	"strings"
	"testing"
	"time"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/e1000hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/ktime"
	"decafdrivers/internal/xpc"
)

type rig struct {
	clock *ktime.Clock
	kern  *kernel.Kernel
	net   *knet.Subsystem
	dev   *e1000hw.Device
	drv   *Driver
}

func newRig(t *testing.T, mode xpc.Mode) *rig {
	t.Helper()
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 8<<20)
	kern := kernel.New(clock, bus)
	net := knet.New(kern)
	dev := e1000hw.New(bus, 9, [6]byte{0x00, 0x1B, 0x21, 0xAA, 0xBB, 0xCC})
	dev.SetLink(true)
	drv := New(kern, net, dev, Config{Mode: mode, IRQ: 9})
	return &rig{clock: clock, kern: kern, net: net, dev: dev, drv: drv}
}

func (r *rig) load(t *testing.T) kernel.LoadReport {
	t.Helper()
	rep, err := r.kern.LoadModule(r.drv.Module())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func (r *rig) up(t *testing.T) {
	t.Helper()
	ctx := r.kern.NewContext("ifup")
	if err := r.drv.NetDevice().Up(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestProbeReadsIdentity(t *testing.T) {
	for _, mode := range []xpc.Mode{xpc.ModeNative, xpc.ModeDecaf} {
		r := newRig(t, mode)
		r.load(t)
		a := r.drv.Adapter
		if a.MAC != [6]byte{0x00, 0x1B, 0x21, 0xAA, 0xBB, 0xCC} {
			t.Errorf("%v: MAC = %x", mode, a.MAC)
		}
		if a.PhyID != 0x01410CB0 {
			t.Errorf("%v: PhyID = %#x", mode, a.PhyID)
		}
		if a.ConfigSpace[0] != uint32(e1000hw.DeviceID)<<16|e1000hw.VendorID {
			t.Errorf("%v: ConfigSpace[0] = %#x", mode, a.ConfigSpace[0])
		}
		if a.Name != "eth0" {
			t.Errorf("%v: Name = %q", mode, a.Name)
		}
	}
}

func TestProbeFailsOnBadEEPROM(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	r.dev.CorruptEEPROM()
	_, err := r.kern.LoadModule(r.drv.Module())
	if err == nil {
		t.Fatal("probe succeeded with corrupt EEPROM")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("err = %v, want checksum failure", err)
	}
	if len(r.kern.LoadedModules()) != 0 {
		t.Fatal("failed module left loaded")
	}
}

func TestBadModuleParamRejected(t *testing.T) {
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 8<<20)
	kern := kernel.New(clock, bus)
	net := knet.New(kern)
	dev := e1000hw.New(bus, 9, [6]byte{1, 2, 3, 4, 5, 6})
	dev.SetLink(true)
	drv := New(kern, net, dev, Config{Mode: xpc.ModeDecaf, IRQ: 9,
		ModuleParams: map[string]int{"TxDescriptors": 7}}) // below MinRing
	if _, err := kern.LoadModule(drv.Module()); err == nil {
		t.Fatal("out-of-range TxDescriptors accepted")
	}
}

func TestOpenTransmitReceive(t *testing.T) {
	for _, mode := range []xpc.Mode{xpc.ModeNative, xpc.ModeDecaf} {
		r := newRig(t, mode)
		r.load(t)
		r.up(t)

		var wire [][]byte
		r.dev.OnTransmit = func(f []byte) { wire = append(wire, append([]byte(nil), f...)) }

		nd := r.drv.NetDevice()
		ctx := r.kern.NewContext("netperf")
		pkt := knet.NewPacket([6]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, nd.MAC, 0x0800, 1000)
		if err := nd.Transmit(ctx, pkt); err != nil {
			t.Fatalf("%v: transmit: %v", mode, err)
		}
		if len(wire) != 1 || len(wire[0]) != pkt.Len() {
			t.Fatalf("%v: wire = %d frames", mode, len(wire))
		}

		var got []*knet.Packet
		nd.SetRxSink(func(p *knet.Packet) { got = append(got, p) })
		if !r.dev.InjectRx(wire[0]) {
			t.Fatalf("%v: InjectRx rejected", mode)
		}
		if len(got) != 1 || got[0].Len() != pkt.Len() {
			t.Fatalf("%v: received %d packets", mode, len(got))
		}
		if got[0].Data[20] != pkt.Data[20] {
			t.Fatalf("%v: payload corrupted in rx path", mode)
		}
		if r.drv.Adapter.Stats.TxPackets != 1 || r.drv.Adapter.Stats.RxPackets != 1 {
			t.Fatalf("%v: stats = %+v", mode, r.drv.Adapter.Stats)
		}
	}
}

func TestTransmitManyWrapsRing(t *testing.T) {
	r := newRig(t, xpc.ModeNative)
	r.load(t)
	r.up(t)
	sent := 0
	r.dev.OnTransmit = func(f []byte) { sent++ }
	nd := r.drv.NetDevice()
	ctx := r.kern.NewContext("burst")
	for i := 0; i < 1000; i++ { // > ring size 256: must wrap cleanly
		pkt := knet.NewPacket([6]byte{1}, nd.MAC, 0x0800, 500)
		if err := nd.Transmit(ctx, pkt); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	if sent != 1000 {
		t.Fatalf("wire saw %d frames, want 1000", sent)
	}
}

func TestDecafInitCrossings(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	rep := r.load(t)
	c := r.drv.Runtime().Counters()
	// Paper Table 3: 91 crossings during E1000 initialization. The model's
	// probe makes ~70 (64 EEPROM downcalls plus PHY/reset/config); accept
	// the right order of magnitude.
	if c.Trips() < 60 || c.Trips() > 130 {
		t.Fatalf("init crossings = %d, want ~60-130 (paper: 91)", c.Trips())
	}
	if rep.InitLatency < time.Second {
		t.Fatalf("decaf init latency = %v, expected seconds (paper: 4.87s)", rep.InitLatency)
	}
}

func TestNativeInitFastAndCrossingFree(t *testing.T) {
	r := newRig(t, xpc.ModeNative)
	rep := r.load(t)
	if c := r.drv.Runtime().Counters(); c.Trips() != 0 {
		t.Fatalf("native init crossed %d times", c.Trips())
	}
	// Native init is dominated by the modeled hardware settle times.
	if rep.InitLatency > time.Second {
		t.Fatalf("native init latency = %v, expected sub-second (paper: 0.42s)", rep.InitLatency)
	}
}

func TestSteadyStateNoCrossingsExceptWatchdog(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	r.load(t)
	r.up(t)
	r.drv.Runtime().ResetCounters()

	nd := r.drv.NetDevice()
	ctx := r.kern.NewContext("netperf")
	for i := 0; i < 100; i++ {
		_ = nd.Transmit(ctx, knet.NewPacket([6]byte{1}, nd.MAC, 0x0800, 1000))
	}
	if c := r.drv.Runtime().Counters(); c.Trips() != 0 {
		t.Fatalf("data path crossed %d times", c.Trips())
	}

	// Advance past two watchdog periods and drain the deferred work: the
	// only steady-state crossings are the watchdog upcalls.
	r.clock.Advance(2 * WatchdogPeriod)
	r.kern.DefaultWorkqueue().Drain()
	c := r.drv.Runtime().Counters()
	if c.PerCall["e1000_watchdog"] != 2 {
		t.Fatalf("watchdog upcalls = %d, want 2", c.PerCall["e1000_watchdog"])
	}
	if r.drv.WatchdogRuns() != 2 {
		t.Fatalf("WatchdogRuns = %d", r.drv.WatchdogRuns())
	}
}

func TestWatchdogDetectsLinkLoss(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	r.load(t)
	r.up(t)
	if !r.drv.NetDevice().CarrierOK() {
		t.Fatal("carrier not up after open")
	}
	r.dev.SetLink(false)
	// The LSC interrupt defers watchdog work; drain it.
	r.kern.DefaultWorkqueue().Drain()
	if r.drv.NetDevice().CarrierOK() {
		t.Fatal("carrier still up after link loss")
	}
	if r.drv.Adapter.LinkUp {
		t.Fatal("adapter.LinkUp stale after watchdog")
	}
	r.dev.SetLink(true)
	r.kern.DefaultWorkqueue().Drain()
	if !r.drv.NetDevice().CarrierOK() {
		t.Fatal("carrier not restored")
	}
}

// TestOpenNestedCleanup is the Figure 4 experiment: inject a failure at the
// request_irq stage and verify the nested handlers released the rings.
func TestE1000OpenNestedCleanup(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	r.load(t)
	// Occupy the IRQ handler slot so request_irq fails... RequestIRQ allows
	// sharing, so instead inject failure by exhausting DMA: allocate the
	// arena dry so setup_rx fails after setup_tx succeeded.
	dma := r.kern.Bus().DMA()
	for {
		if _, err := dma.Alloc(1<<20, 64); err != nil {
			break
		}
	}
	inUseBefore := dma.InUse()
	ctx := r.kern.NewContext("ifup")
	err := r.drv.NetDevice().Up(ctx)
	if err == nil {
		t.Fatal("open succeeded with exhausted DMA arena")
	}
	// Whatever tx/rx resources were acquired must have been freed by the
	// nested handlers (Figure 4 semantics).
	if got := dma.InUse(); got != inUseBefore {
		t.Fatalf("open leaked %d DMA allocations on failure", got-inUseBefore)
	}
	if r.drv.NetDevice().IsUp() {
		t.Fatal("device marked up after failed open")
	}
}

func TestCloseFreesResources(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	r.load(t)
	dma := r.kern.Bus().DMA()
	before := dma.InUse()
	r.up(t)
	ctx := r.kern.NewContext("ifdown")
	if err := r.drv.NetDevice().Down(ctx); err != nil {
		t.Fatal(err)
	}
	if got := dma.InUse(); got != before {
		t.Fatalf("close leaked %d DMA allocations", got-before)
	}
}

func TestModuleUnload(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	r.load(t)
	r.up(t)
	if err := r.kern.UnloadModule("e1000"); err != nil {
		t.Fatal(err)
	}
	if r.drv.Runtime().SharedCount() != 0 {
		t.Fatal("shared objects leaked after unload")
	}
	if _, ok := r.net.Device("eth0"); ok {
		t.Fatal("netdev still registered after unload")
	}
	// Watchdog must not fire after unload.
	runs := r.drv.WatchdogRuns()
	r.clock.Advance(10 * WatchdogPeriod)
	r.kern.DefaultWorkqueue().Drain()
	if r.drv.WatchdogRuns() != runs {
		t.Fatal("watchdog ran after unload")
	}
}

func TestTransmitWithoutCarrierFails(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	r.load(t)
	r.up(t)
	r.dev.SetLink(false)
	r.kern.DefaultWorkqueue().Drain()
	nd := r.drv.NetDevice()
	ctx := r.kern.NewContext("t")
	err := nd.Transmit(ctx, knet.NewPacket([6]byte{1}, nd.MAC, 0x0800, 100))
	if err == nil {
		t.Fatal("transmit succeeded without carrier")
	}
	if nd.Stats().TxErrors != 1 {
		t.Fatalf("TxErrors = %d", nd.Stats().TxErrors)
	}
}

func TestNativeAndDecafConverge(t *testing.T) {
	// The same traffic through both deployments must produce identical
	// device-visible behavior (frames on the wire).
	frames := func(mode xpc.Mode) uint64 {
		r := newRig(t, mode)
		r.load(t)
		r.up(t)
		nd := r.drv.NetDevice()
		ctx := r.kern.NewContext("t")
		for i := 0; i < 50; i++ {
			if err := nd.Transmit(ctx, knet.NewPacket([6]byte{2}, nd.MAC, 0x0800, 900)); err != nil {
				t.Fatal(err)
			}
		}
		tx, _, _, _, _ := r.dev.Counters()
		return tx
	}
	if n, d := frames(xpc.ModeNative), frames(xpc.ModeDecaf); n != d || n != 50 {
		t.Fatalf("native sent %d, decaf sent %d, want 50/50", n, d)
	}
}

func TestUserFaultContained(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	r.load(t)
	ctx := r.kern.NewContext("t")
	err := r.drv.Runtime().Upcall(ctx, "buggy_user_code", func(uctx *kernel.Context) error {
		var p *Adapter
		_ = p.Name // nil dereference in user-level code
		return nil
	}, r.drv.Adapter)
	var fault *xpc.UserFault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want UserFault", err)
	}
	// Kernel survives: the data path still works.
	r.up(t)
	nd := r.drv.NetDevice()
	if err := nd.Transmit(ctx, knet.NewPacket([6]byte{3}, nd.MAC, 0x0800, 100)); err != nil {
		t.Fatalf("kernel unusable after contained user fault: %v", err)
	}
}
