// Package rtl8139 is the Decaf conversion of the 8139too fast Ethernet
// driver. The nucleus keeps the programmed-I/O data path (interrupt handler,
// transmit, receive-ring drain) in the kernel; the decaf driver holds probe
// (EEPROM identification), open/close resource management and media
// handling. Per the paper (§4.1), 8139too needed six deferred-work lines in
// the nucleus; everything else is the sliced original.
package rtl8139

import (
	"fmt"
	"time"

	"decafdrivers/internal/decaf"
	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/rtl8139hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/recovery"
	"decafdrivers/internal/xdr"
	"decafdrivers/internal/xpc"
)

// HWException is the decaf driver's checked exception class.
const HWException = "RTL8139HWException"

// Per-packet CPU costs: the 8139 copies every frame over programmed I/O-era
// buffers, so its per-packet cost dwarfs the E1000's (Table 3: ~14% CPU to
// drive 100 Mb/s).
const (
	txPacketCost = 16 * time.Microsecond
	rxPacketCost = 19 * time.Microsecond
)

// Adapter is the rtl8139_private analogue shared across domains.
type Adapter struct {
	Name      string
	MAC       [6]byte
	MsgEnable int32
	Mtu       int32
	LinkUp    bool
	EEPROM    [32]uint16 // 93C46 contents, read word-by-word at probe
	Stats     knet.Stats

	// Kernel-only data-path state.
	TxCurrent uint32
	TxDirty   uint32
	IntrCount uint64
}

// FieldMask is DriverSlicer's marshaling specification for the adapter.
func FieldMask() xdr.FieldMask {
	return xdr.FieldMask{"Adapter": {
		"Name": true, "MAC": true, "MsgEnable": true, "Mtu": true,
		"LinkUp": true, "EEPROM": true, "Stats": true,
	}}
}

// Config configures a driver instance.
type Config struct {
	Mode xpc.Mode
	IRQ  int
	// DataPath places the per-packet receive path; DataPathNucleus is the
	// default. DataPathDecaf routes each drained frame through the decaf
	// driver as one batch per interrupt, submitted through the runtime's
	// transport.
	DataPath xpc.DataPath
	// RxCoalesceWindow bounds how long a drained frame may wait for its
	// batch to fill. 0 (the default) self-tunes: the window tracks an EWMA
	// of observed frame interarrival, scaled to the transport's batch size
	// and clamped to [100µs, 2ms], so it widens at low offered loads (a
	// batch can still fill) and narrows at high rates (frames are not held
	// longer than the traffic warrants). A positive value is an explicit
	// override and disables the self-tuning.
	RxCoalesceWindow time.Duration
}

// Driver is one bound 8139too instance.
type Driver struct {
	kern    *kernel.Kernel
	net     *knet.Subsystem
	dev     *rtl8139hw.Device
	rt      *xpc.Runtime
	helpers *decaf.Helpers
	irq     int
	ioBase  uint16

	Adapter      *Adapter
	DecafAdapter *Adapter

	dataPath xpc.DataPath
	lock     *kernel.SpinLock
	txBufs   [rtl8139hw.NumTxDesc]hw.DMAAddr
	rxBuf    hw.DMAAddr
	rxReadPt uint16
	netdev   *knet.NetDevice

	// Decaf-data-path receive coalescing: the 8139 interrupts per frame, so
	// drained frames accumulate here until a transport batch fills or the
	// coalescing timer closes the window.
	rxPending     []*knet.Packet
	rxWindow      time.Duration
	rxAdaptive    bool
	rxEwma        time.Duration // EWMA of frame interarrival (adaptive mode)
	rxLastFrameAt time.Duration
	rxTimer       *kernel.KTimer
	rxFlushArmed  bool
	rxFlushQueued bool
	// rxInFlight holds flushes submitted through FlushAsync whose frames
	// await the decaf-side completion before delivery up the stack. Inline
	// transports settle during submission (pipeline depth one, the seed
	// behavior); an async transport overlaps the crossing with further
	// interrupt drains. Each flight carries the payload-ring slots its
	// frames crossed in, recycled when the flush settles.
	rxInFlight xpc.FlushPipeline[rxFlight]

	// Recovery supervision state (EnableRecovery).
	journal    *recovery.StateJournal
	recovering bool
	holdLimit  int
}

// rxFlight is one in-flight RX flush: the frames it carried and the staged
// payloads they crossed in.
type rxFlight = xpc.Flight[*knet.Packet]

// maxRxInFlight bounds the RX pipeline depth under an async transport.
const maxRxInFlight = 4

// New binds the driver to a device model.
func New(k *kernel.Kernel, net *knet.Subsystem, dev *rtl8139hw.Device, ioBase uint16, cfg Config) *Driver {
	d := &Driver{
		kern: k, net: net, dev: dev, irq: cfg.IRQ, ioBase: ioBase,
		dataPath: cfg.DataPath,
		rxWindow: cfg.RxCoalesceWindow,
		lock:     kernel.NewSpinLock("8139too.lock"),
		Adapter:  &Adapter{MsgEnable: 1, Mtu: 1500},
	}
	if d.rxWindow <= 0 {
		d.rxWindow = rxCoalesceWindow
		d.rxAdaptive = true
	}
	d.rt = xpc.NewRuntime(k, "8139too", cfg.Mode, FieldMask())
	d.rt.DisableIRQs = []int{cfg.IRQ}
	d.helpers = decaf.NewHelpers(d.rt, k.Bus())
	// The coalescing timer runs at high priority and so only enqueues the
	// flush work; the work item performs the batched crossing (§3.1.3).
	d.rxTimer = k.NewTimer("8139too_rx_coalesce", func(tctx *kernel.Context) {
		d.rxFlushArmed = false
		if len(d.rxPending) > 0 {
			d.scheduleRxFlush()
		}
	})
	if cfg.Mode == xpc.ModeNative {
		d.DecafAdapter = d.Adapter
	} else {
		d.DecafAdapter = &Adapter{}
		if _, err := d.rt.Share(d.Adapter, d.DecafAdapter); err != nil {
			panic(fmt.Sprintf("8139too: share adapter: %v", err))
		}
	}
	return d
}

// Runtime exposes the XPC runtime.
func (d *Driver) Runtime() *xpc.Runtime { return d.rt }

// NetDevice returns the registered interface.
func (d *Driver) NetDevice() *knet.NetDevice { return d.netdev }

// --- nucleus (kernel-resident) ---

func (d *Driver) outb(off uint16, v uint8)  { d.kern.Bus().Outb(d.ioBase+off, v) }
func (d *Driver) outw(off uint16, v uint16) { d.kern.Bus().Outw(d.ioBase+off, v) }
func (d *Driver) outl(off uint16, v uint32) { d.kern.Bus().Outl(d.ioBase+off, v) }
func (d *Driver) inb(off uint16) uint8      { return d.kern.Bus().Inb(d.ioBase + off) }
func (d *Driver) inw(off uint16) uint16     { return d.kern.Bus().Inw(d.ioBase + off) }

// resetChip is a kernel entry point: CR writes race the data path.
func (d *Driver) resetChip(ctx *kernel.Context) error {
	d.outb(rtl8139hw.RegCR, rtl8139hw.CmdReset)
	ctx.UDelay(10)
	if d.inb(rtl8139hw.RegCR)&rtl8139hw.CmdReset != 0 {
		return fmt.Errorf("8139too: chip stuck in reset")
	}
	return nil
}

// readEEPROMWord is a kernel entry point serializing 93C46 access.
func (d *Driver) readEEPROMWord(ctx *kernel.Context, addr uint8) uint16 {
	d.outb(rtl8139hw.Reg9346CR, 0x80|addr)
	ctx.UDelay(4)
	return d.inw(rtl8139hw.Reg9346CR)
}

// allocBuffers is a kernel entry point: DMA allocation.
func (d *Driver) allocBuffers(ctx *kernel.Context) error {
	dma := d.kern.Bus().DMA()
	rx, err := dma.Alloc(rtl8139hw.RxBufLen, 256)
	if err != nil {
		return fmt.Errorf("8139too: rx buffer: %w", err)
	}
	var txs [rtl8139hw.NumTxDesc]hw.DMAAddr
	for i := range txs {
		b, err := dma.Alloc(2048, 32)
		if err != nil {
			for _, pb := range txs[:i] {
				_ = dma.Free(pb)
			}
			_ = dma.Free(rx)
			return fmt.Errorf("8139too: tx buffer %d: %w", i, err)
		}
		txs[i] = b
	}
	d.rxBuf, d.txBufs = rx, txs
	d.rxReadPt = 0
	return nil
}

func (d *Driver) freeBuffers(ctx *kernel.Context) {
	dma := d.kern.Bus().DMA()
	if d.rxBuf != 0 {
		_ = dma.Free(d.rxBuf)
		d.rxBuf = 0
	}
	for i, b := range d.txBufs {
		if b != 0 {
			_ = dma.Free(b)
			d.txBufs[i] = 0
		}
	}
}

// startChip programs buffers and enables rx/tx (kernel entry point).
func (d *Driver) startChip(ctx *kernel.Context) {
	d.outl(rtl8139hw.RegRBSTART, uint32(d.rxBuf))
	for i := range d.txBufs {
		d.outl(rtl8139hw.RegTSAD0+uint16(4*i), uint32(d.txBufs[i]))
	}
	d.outb(rtl8139hw.RegCR, rtl8139hw.CmdRxEnable|rtl8139hw.CmdTxEnable)
	d.outw(rtl8139hw.RegIMR, rtl8139hw.IntROK|rtl8139hw.IntTOK)
	d.rxReadPt = 0
	d.Adapter.TxCurrent, d.Adapter.TxDirty = 0, 0
}

func (d *Driver) stopChip(ctx *kernel.Context) {
	d.outw(rtl8139hw.RegIMR, 0)
	d.outb(rtl8139hw.RegCR, 0)
}

// intr is the interrupt handler, a critical root.
func (d *Driver) intr(ctx *kernel.Context, irq int, dev any) {
	isr := d.inw(rtl8139hw.RegISR)
	if isr == 0 {
		return
	}
	d.outw(rtl8139hw.RegISR, isr) // ack
	a := d.Adapter
	a.IntrCount++
	if isr&rtl8139hw.IntTOK != 0 {
		d.lock.Lock(ctx)
		a.TxDirty = a.TxCurrent
		d.lock.Unlock(ctx)
	}
	if isr&rtl8139hw.IntROK != 0 {
		d.rxInterrupt(ctx)
	}
}

// rxInterrupt drains the receive ring (critical root path).
func (d *Driver) rxInterrupt(ctx *kernel.Context) {
	dma := d.kern.Bus().DMA()
	a := d.Adapter
	var frames []*knet.Packet
	d.lock.Lock(ctx)
	for d.inb(rtl8139hw.RegCR)&rtl8139hw.CmdBufEmpty == 0 {
		base := d.rxBuf + hw.DMAAddr(d.rxReadPt)
		status := dma.Read16(base)
		if status&0x0001 == 0 { // not ROK
			break
		}
		length := int(dma.Read16(base+2)) - 4 // strip CRC
		if length <= 0 {
			break
		}
		data := dma.Read(base+rtl8139hw.RxHeaderLen, length)
		frames = append(frames, &knet.Packet{Data: data})
		advance := (rtl8139hw.RxHeaderLen + length + 4 + 3) &^ 3
		d.rxReadPt += uint16(advance)
		d.outw(rtl8139hw.RegCAPR, d.rxReadPt-16)
		// Cursor rewind mirrors the device model's drain-reset.
		if d.inb(rtl8139hw.RegCR)&rtl8139hw.CmdBufEmpty != 0 {
			d.rxReadPt = 0
		}
		a.Stats.RxPackets++
		a.Stats.RxBytes += uint64(length)
		ctx.Charge(rxPacketCost)
	}
	d.lock.Unlock(ctx)
	d.deliverRx(frames)
}

// rxCoalesceWindow bounds how long a decaf-data-path frame may wait for its
// batch to fill before the timer flushes the queue — the driver-level
// analogue of NIC interrupt coalescing, needed because the 8139 interrupts
// per frame. In adaptive mode it is the initial window and the clamp
// ceiling; rxCoalesceMin is the clamp floor.
const (
	rxCoalesceWindow = 2 * time.Millisecond
	rxCoalesceMin    = 100 * time.Microsecond
)

// observeRxInterarrival feeds n freshly drained frames into the EWMA of
// frame interarrival (α = 1/8), the signal the adaptive coalescing window
// tunes from — as modern NICs self-tune their interrupt moderation.
func (d *Driver) observeRxInterarrival(n int) {
	now := d.kern.Clock().Now()
	if d.rxLastFrameAt > 0 && now > d.rxLastFrameAt {
		delta := (now - d.rxLastFrameAt) / time.Duration(n)
		if d.rxEwma == 0 {
			d.rxEwma = delta
		} else {
			d.rxEwma += (delta - d.rxEwma) / 8
		}
	}
	d.rxLastFrameAt = now
}

// coalesceWindow is the current RX coalescing window. With an explicit
// RxCoalesceWindow it is fixed; in adaptive mode it is sized so a transport
// batch can fill at the observed arrival rate (EWMA interarrival × batch ×
// 25% headroom), clamped to [rxCoalesceMin, rxCoalesceWindow] — low rates
// hold frames no longer than 2 ms, high rates flush partial batches in
// hundreds of microseconds instead of milliseconds.
func (d *Driver) coalesceWindow() time.Duration {
	if !d.rxAdaptive || d.rxEwma == 0 {
		return d.rxWindow
	}
	w := d.rxEwma * time.Duration(d.rt.Transport().MaxBatch()) * 5 / 4
	if w < rxCoalesceMin {
		w = rxCoalesceMin
	}
	if w > rxCoalesceWindow {
		w = rxCoalesceWindow
	}
	return w
}

// RxCoalesceWindow reports the coalescing window currently in effect
// (fixed, or the adaptive window's present value).
func (d *Driver) RxCoalesceWindow() time.Duration { return d.coalesceWindow() }

// deliverRx hands drained frames up the stack. In the decaf data path the
// frames accumulate until a transport batch fills (or the coalescing window
// closes), then cross to the decaf driver in one batched flush before
// delivery.
func (d *Driver) deliverRx(frames []*knet.Packet) {
	if len(frames) == 0 {
		return
	}
	if d.dataPath != xpc.DataPathDecaf || d.rt.Mode != xpc.ModeDecaf {
		for _, f := range frames {
			d.netdev.Receive(f)
		}
		return
	}
	d.observeRxInterarrival(len(frames))
	d.rxPending = append(d.rxPending, frames...)
	if len(d.rxPending) >= d.rt.Transport().MaxBatch() {
		d.scheduleRxFlush()
	} else if !d.rxFlushArmed && !d.rxFlushQueued {
		d.rxFlushArmed = true
		d.rxTimer.Schedule(d.coalesceWindow())
	}
}

// scheduleRxFlush queues the batched RX flush in process context, where the
// crossing is legal. At most one flush is in flight at a time.
func (d *Driver) scheduleRxFlush() {
	if d.rxFlushQueued {
		return
	}
	d.rxFlushQueued = true
	d.kern.DeferToWork(func(wctx *kernel.Context) { d.flushRx(wctx) })
}

// flushRx submits every coalesced frame to the decaf driver via FlushAsync,
// then delivers the frames of every flush whose crossing has (virtually)
// completed. Inline transports settle during submission, so delivery
// happens in the same work item — the seed behavior; an async transport
// lets the interrupt path keep draining while the decaf side inspects.
func (d *Driver) flushRx(wctx *kernel.Context) {
	frames := d.rxPending
	d.rxPending = nil
	d.rxFlushQueued = false
	// The flush consumes any armed coalescing timer: it should fire only
	// when a partial queue goes stale, not mid-stream between full batches.
	if d.rxFlushArmed {
		d.rxTimer.Stop()
		d.rxFlushArmed = false
	}
	if len(frames) > 0 {
		fl := xpc.StageFlight(d.rt, frames, func(p *knet.Packet) []byte { return p.Data })
		b := d.rt.Batch(wctx)
		for i := range frames {
			b.UpcallHandlerPayload("rtl8139_rx_frame", fl.Payloads[i])
		}
		d.rxInFlight.Push(b.FlushAsync(), fl)
	}
	d.reapRx(wctx, d.rxInFlight.Len() >= maxRxInFlight)
}

// deliverFrames/dropFrames are the RX pipeline's deliver/drop pair; both
// recycle the flight's payload slots (the flush has settled).
func (d *Driver) deliverFrames(f rxFlight) {
	for _, pkt := range f.Items {
		d.netdev.Receive(pkt)
	}
	f.Release(d.rt)
}

func (d *Driver) dropFrames(f rxFlight, _ error) {
	d.Adapter.Stats.RxDropped += uint64(len(f.Items))
	f.Release(d.rt)
}

// reapRx delivers the frames of every settled in-flight flush; with force,
// it first waits for the oldest (charging any residual stall). A faulted
// decaf driver drops its own drain; the kernel survives.
func (d *Driver) reapRx(ctx *kernel.Context, force bool) {
	_ = d.rxInFlight.Reap(ctx, d.kern.Clock().Now(), force, d.deliverFrames, d.dropFrames)
}

// Quiesce waits for every in-flight decaf crossing and delivers the reaped
// frames; workload harnesses call it before closing a measurement phase.
func (d *Driver) Quiesce(ctx *kernel.Context) error {
	_ = d.rxInFlight.Drain(ctx, d.deliverFrames, d.dropFrames)
	return d.rt.DrainCrossings(ctx)
}

// xmit is hard_start_xmit, a critical root.
func (d *Driver) xmit(ctx *kernel.Context, pkt *knet.Packet) error {
	if len(pkt.Data) > 1792 {
		return fmt.Errorf("8139too: frame too large")
	}
	a := d.Adapter
	d.lock.Lock(ctx)
	entry := a.TxCurrent % rtl8139hw.NumTxDesc
	if a.TxCurrent-a.TxDirty >= rtl8139hw.NumTxDesc {
		d.lock.Unlock(ctx)
		a.Stats.TxErrors++
		return fmt.Errorf("8139too: tx descriptors exhausted")
	}
	d.kern.Bus().DMA().Write(d.txBufs[entry], pkt.Data)
	a.TxCurrent++
	a.Stats.TxPackets++
	a.Stats.TxBytes += uint64(len(pkt.Data))
	ctx.Charge(txPacketCost)
	size := uint32(len(pkt.Data))
	d.lock.Unlock(ctx)

	// Doorbell outside the lock: it synchronously raises TOK.
	d.outl(rtl8139hw.RegTSD0+uint16(4*entry), size)
	return nil
}

// --- decaf driver (user-level) ---

// The decaf data path's per-frame RX body lives in the handler table
// (handlers.go) so a process-separated transport executes it in the worker.

// probeDecaf identifies the chip and reads the MAC: the decaf-driver body
// of rtl8139_init_board + read_eeprom.
//
//decaf:boundary
func (d *Driver) probeDecaf(uctx *kernel.Context) {
	if err := d.rt.Downcall(uctx, "rtl8139_reset_chip", func(kctx *kernel.Context) error {
		return d.resetChip(kctx)
	}); err != nil {
		decaf.ThrowCause(HWException, err, "reset")
	}
	d.helpers.Msleep(uctx, 10)

	// Unlock the 93C46 and walk every word through the Batch downcall
	// builder: one direction throughout, so under a batched or async
	// transport the walk coalesces into one crossing per MaxBatch-call
	// chunk instead of one per word (the Table 3 init-crossing reduction);
	// under the default per-call transport the counts are unchanged. The
	// relock is issued unconditionally afterwards — a failed walk must not
	// leave the 93C46 unlocked (a sticky batch error would drop a queued
	// relock).
	a := d.DecafAdapter
	var words [32]uint16
	b := d.rt.Batch(uctx)
	b.Downcall("rtl8139_cfg9346_unlock", func(kctx *kernel.Context) error {
		d.outb(rtl8139hw.Reg9346CR, 0xC0)
		return nil
	})
	for w := uint8(0); w < uint8(len(words)); w++ {
		w := w
		b.Downcall("rtl8139_read_eeprom", func(kctx *kernel.Context) error {
			words[w] = d.readEEPROMWord(kctx, w)
			return nil
		})
	}
	walkErr := b.Flush()
	_ = d.rt.Downcall(uctx, "rtl8139_cfg9346_lock", func(kctx *kernel.Context) error {
		d.outb(rtl8139hw.Reg9346CR, 0x00)
		return nil
	})
	if walkErr != nil {
		decaf.ThrowCause(HWException, walkErr, "EEPROM walk failed")
	}
	copy(a.EEPROM[:], words[:])
	if a.EEPROM[0] != 0x8129 {
		decaf.Throw(HWException, "bad EEPROM signature %#x", a.EEPROM[0])
	}
	for i := 0; i < 3; i++ {
		w := a.EEPROM[7+i]
		a.MAC[2*i] = byte(w)
		a.MAC[2*i+1] = byte(w >> 8)
	}
	a.Name = "eth0"
	a.LinkUp = true
}

// openDecaf is the decaf-driver body of rtl8139_open, exception style.
//
//decaf:boundary
func (d *Driver) openDecaf(uctx *kernel.Context) {
	if err := d.rt.Downcall(uctx, "rtl8139_alloc_buffers", func(kctx *kernel.Context) error {
		return d.allocBuffers(kctx)
	}); err != nil {
		decaf.ThrowCause(HWException, err, "buffer allocation")
	}
	decaf.TryCatch(func() {
		if err := d.rt.Downcall(uctx, "request_irq", func(kctx *kernel.Context) error {
			return d.kern.RequestIRQ(d.irq, "8139too", d.intr, d.Adapter)
		}); err != nil {
			decaf.ThrowCause(HWException, err, "request_irq")
		}
		_ = d.rt.Downcall(uctx, "rtl8139_hw_start", func(kctx *kernel.Context) error {
			d.startChip(kctx)
			return nil
		})
	}, func(e *decaf.Exception) {
		_ = d.rt.Downcall(uctx, "rtl8139_free_buffers", func(kctx *kernel.Context) error {
			d.freeBuffers(kctx)
			return nil
		})
		decaf.Rethrow(e)
	})
}

// closeDecaf tears the interface down.
//
//decaf:boundary
func (d *Driver) closeDecaf(uctx *kernel.Context) {
	_ = d.rt.Downcall(uctx, "rtl8139_hw_stop", func(kctx *kernel.Context) error {
		d.stopChip(kctx)
		return nil
	})
	_ = d.rt.Downcall(uctx, "free_irq", func(kctx *kernel.Context) error {
		return d.kern.FreeIRQ(d.irq, "8139too")
	})
	_ = d.rt.Downcall(uctx, "rtl8139_free_buffers", func(kctx *kernel.Context) error {
		d.freeBuffers(kctx)
		return nil
	})
}

// --- module & netdev glue ---

// Module adapts the driver to the module loader.
func (d *Driver) Module() kernel.Module { return (*rtlModule)(d) }

type rtlModule Driver

// ModuleName implements kernel.Module.
func (m *rtlModule) ModuleName() string { return "8139too" }

// Init probes through the decaf driver and registers the interface.
func (m *rtlModule) Init(ctx *kernel.Context) error {
	d := (*Driver)(m)
	d.dev.PCI.EnableBusMaster()
	err := d.rt.Upcall(ctx, "rtl8139_probe", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() { d.probeDecaf(uctx) }))
	}, d.Adapter)
	if err != nil {
		return fmt.Errorf("8139too: probe: %w", err)
	}
	d.Adapter.Name = d.net.FreeName("eth")
	nd, err := d.net.Register(d.Adapter.Name, int(d.Adapter.Mtu), (*rtlOps)(d))
	if err != nil {
		return err
	}
	nd.MAC = d.Adapter.MAC
	d.netdev = nd
	d.journalProbe()
	return nil
}

// Exit unregisters and quiesces.
func (m *rtlModule) Exit(ctx *kernel.Context) {
	d := (*Driver)(m)
	if d.netdev != nil && d.netdev.IsUp() {
		_ = d.netdev.Down(ctx)
	}
	if d.netdev != nil {
		_ = d.net.Unregister(d.netdev.Name)
	}
	if d.rt.Mode == xpc.ModeDecaf {
		d.rt.Unshare(d.Adapter)
	}
}

type rtlOps Driver

// Open implements knet.DeviceOps via the decaf driver. During a recovery
// outage control-plane ops refuse (EBUSY-style) rather than crossing into
// the suspect or mid-rebuild decaf driver.
func (o *rtlOps) Open(ctx *kernel.Context) error {
	d := (*Driver)(o)
	if d.recovering {
		return fmt.Errorf("8139too: open while the driver is recovering")
	}
	err := d.rt.Upcall(ctx, "rtl8139_open", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() { d.openDecaf(uctx) }))
	}, d.Adapter)
	if err != nil {
		return err
	}
	if d.dev.LinkUp() {
		d.netdev.CarrierOn()
	}
	d.journalOpen()
	return nil
}

// Stop implements knet.DeviceOps via the decaf driver. Coalesced RX frames
// not yet flushed are purged, as a real ifdown purges driver queues, and
// in-flight decaf crossings settle (their frames are dropped rather than
// delivered into a closing interface).
func (o *rtlOps) Stop(ctx *kernel.Context) error {
	d := (*Driver)(o)
	if d.recovering {
		return fmt.Errorf("8139too: stop while the driver is recovering")
	}
	d.rxTimer.Stop()
	d.rxFlushArmed = false
	d.rxFlushQueued = false
	if n := len(d.rxPending); n > 0 {
		d.rxPending = nil
		d.Adapter.Stats.RxDropped += uint64(n)
	}
	_ = d.rxInFlight.Drain(ctx, func(f rxFlight) {
		d.dropFrames(f, nil)
	}, d.dropFrames)
	if d.journal != nil {
		d.journal.Remove("ifup")
	}
	return d.rt.Upcall(ctx, "rtl8139_close", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() { d.closeDecaf(uctx) }))
	}, d.Adapter)
}

// StartXmit implements knet.DeviceOps in the nucleus.
func (o *rtlOps) StartXmit(ctx *kernel.Context, pkt *knet.Packet) error {
	return (*Driver)(o).xmit(ctx, pkt)
}
