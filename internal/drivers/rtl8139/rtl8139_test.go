package rtl8139

import (
	"testing"
	"time"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/rtl8139hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/ktime"
	"decafdrivers/internal/xpc"
)

type rig struct {
	clock *ktime.Clock
	kern  *kernel.Kernel
	net   *knet.Subsystem
	dev   *rtl8139hw.Device
	drv   *Driver
}

func newRig(t *testing.T, mode xpc.Mode) *rig {
	t.Helper()
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 4<<20)
	kern := kernel.New(clock, bus)
	net := knet.New(kern)
	dev := rtl8139hw.New(bus, 11, 0xC000, [6]byte{0x00, 0xE0, 0x4C, 0x39, 0x13, 0x9A})
	drv := New(kern, net, dev, 0xC000, Config{Mode: mode, IRQ: 11})
	return &rig{clock: clock, kern: kern, net: net, dev: dev, drv: drv}
}

func (r *rig) loadAndUp(t *testing.T) {
	t.Helper()
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	ctx := r.kern.NewContext("ifup")
	if err := r.drv.NetDevice().Up(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestProbeReadsMACFromEEPROM(t *testing.T) {
	for _, mode := range []xpc.Mode{xpc.ModeNative, xpc.ModeDecaf} {
		r := newRig(t, mode)
		if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
			t.Fatal(err)
		}
		if r.drv.Adapter.MAC != [6]byte{0x00, 0xE0, 0x4C, 0x39, 0x13, 0x9A} {
			t.Fatalf("%v: MAC = %x", mode, r.drv.Adapter.MAC)
		}
		if r.drv.Adapter.EEPROM[0] != 0x8129 {
			t.Fatalf("%v: EEPROM signature = %#x", mode, r.drv.Adapter.EEPROM[0])
		}
	}
}

func TestTransmitReceiveLoopback(t *testing.T) {
	for _, mode := range []xpc.Mode{xpc.ModeNative, xpc.ModeDecaf} {
		r := newRig(t, mode)
		r.loadAndUp(t)
		var wire [][]byte
		r.dev.OnTransmit = func(f []byte) { wire = append(wire, append([]byte(nil), f...)) }
		nd := r.drv.NetDevice()
		ctx := r.kern.NewContext("t")
		pkt := knet.NewPacket([6]byte{0xFF}, nd.MAC, 0x0800, 600)
		if err := nd.Transmit(ctx, pkt); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(wire) != 1 || len(wire[0]) != pkt.Len() {
			t.Fatalf("%v: wire got %d frames", mode, len(wire))
		}
		var got []*knet.Packet
		nd.SetRxSink(func(p *knet.Packet) { got = append(got, p) })
		if !r.dev.InjectRx(wire[0]) {
			t.Fatalf("%v: InjectRx rejected", mode)
		}
		if len(got) != 1 || got[0].Len() != pkt.Len() {
			t.Fatalf("%v: rx got %d packets (len %d)", mode, len(got), got[0].Len())
		}
	}
}

func TestSustainedTrafficBothDirections(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	r.loadAndUp(t)
	nd := r.drv.NetDevice()
	ctx := r.kern.NewContext("t")
	r.dev.OnTransmit = func(f []byte) {}
	rxCount := 0
	nd.SetRxSink(func(p *knet.Packet) { rxCount++ })

	for i := 0; i < 500; i++ {
		if err := nd.Transmit(ctx, knet.NewPacket([6]byte{1}, nd.MAC, 0x0800, 400)); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		frame := knet.NewPacket(nd.MAC, [6]byte{2}, 0x0800, 700)
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("rx %d rejected", i)
		}
	}
	if rxCount != 500 {
		t.Fatalf("received %d, want 500", rxCount)
	}
	if r.drv.Adapter.Stats.TxPackets != 500 || r.drv.Adapter.Stats.RxPackets != 500 {
		t.Fatalf("stats = %+v", r.drv.Adapter.Stats)
	}
}

func TestDecafInitCrossings(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	rep, err := r.kern.LoadModule(r.drv.Module())
	if err != nil {
		t.Fatal(err)
	}
	c := r.drv.Runtime().Counters()
	// Paper: 40 crossings during 8139too initialization (insmod + up);
	// probe alone makes ~22 (20 EEPROM words + reset + the probe upcall).
	if c.Trips() < 15 || c.Trips() > 60 {
		t.Fatalf("init crossings = %d, want ~15-60 (paper: 40)", c.Trips())
	}
	if rep.InitLatency < 300*time.Millisecond {
		t.Fatalf("decaf init latency = %v, paper ~1s", rep.InitLatency)
	}
}

func TestNativeSteadyStateNoCrossings(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	r.loadAndUp(t)
	r.drv.Runtime().ResetCounters()
	nd := r.drv.NetDevice()
	ctx := r.kern.NewContext("t")
	r.dev.OnTransmit = func(f []byte) {}
	for i := 0; i < 200; i++ {
		_ = nd.Transmit(ctx, knet.NewPacket([6]byte{1}, nd.MAC, 0x0800, 1000))
	}
	if c := r.drv.Runtime().Counters(); c.Trips() != 0 {
		t.Fatalf("steady-state crossings = %d, want 0 (paper: 8139too never invokes the decaf driver under netperf)", c.Trips())
	}
}

func TestCloseReleasesResources(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	dma := r.kern.Bus().DMA()
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	before := dma.InUse()
	ctx := r.kern.NewContext("t")
	if err := r.drv.NetDevice().Up(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.drv.NetDevice().Down(ctx); err != nil {
		t.Fatal(err)
	}
	if dma.InUse() != before {
		t.Fatalf("leaked %d DMA allocations", dma.InUse()-before)
	}
	// IRQ handler must be gone.
	r.kern.Bus().IRQ(11).Raise()
	if r.drv.Adapter.IntrCount != 0 {
		t.Fatal("interrupt handled after close")
	}
}

func TestTxRingExhaustion(t *testing.T) {
	r := newRig(t, xpc.ModeNative)
	r.loadAndUp(t)
	// Disable the device's TOK processing by stopping tx enable, so
	// descriptors never free: the 5th transmit must fail.
	r.drv.outb(rtl8139hw.RegCR, rtl8139hw.CmdRxEnable) // tx disabled
	nd := r.drv.NetDevice()
	ctx := r.kern.NewContext("t")
	var err error
	for i := 0; i < rtl8139hw.NumTxDesc+1; i++ {
		err = nd.Transmit(ctx, knet.NewPacket([6]byte{1}, nd.MAC, 0x0800, 100))
	}
	if err == nil {
		t.Fatal("transmit succeeded past descriptor exhaustion")
	}
}
