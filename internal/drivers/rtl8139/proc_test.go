//go:build unix

package rtl8139

import (
	"os"
	"testing"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/rtl8139hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/ktime"
	"decafdrivers/internal/recovery"
	"decafdrivers/internal/xpc"
)

// TestMain routes the re-exec'd test binary into the decaf worker loop for
// the process-separated transport fixtures below.
func TestMain(m *testing.M) {
	xpc.MaybeRunWorker()
	os.Exit(m.Run())
}

// newProcPathRig is newDecafPathRig with the decaf side in a real worker
// process.
func newProcPathRig(t *testing.T, batchN int) (*rig, *xpc.ProcTransport) {
	t.Helper()
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 4<<20)
	kern := kernel.New(clock, bus)
	net := knet.New(kern)
	dev := rtl8139hw.New(bus, 11, 0xC000, [6]byte{0x00, 0xE0, 0x4C, 0x39, 0x13, 0x9A})
	drv := New(kern, net, dev, 0xC000, Config{
		Mode: xpc.ModeDecaf, IRQ: 11, DataPath: xpc.DataPathDecaf,
	})
	pt, err := xpc.NewProcTransport(xpc.ProcConfig{Batch: batchN})
	if err != nil {
		t.Fatal(err)
	}
	drv.Runtime().SetTransport(pt)
	t.Cleanup(func() { drv.Runtime().SetTransport(nil) })
	return &rig{clock: clock, kern: kern, net: net, dev: dev, drv: drv}, pt
}

// TestProcExternalKillRecoversRxPath: the worker process dies by an
// external SIGKILL (nothing inside the simulation knows); the next RX flush
// hits the dead wire, surfaces as a contained fault, and the supervisor
// restarts the driver — respawned worker, replayed journal, frames
// delivering again.
func TestProcExternalKillRecoversRxPath(t *testing.T) {
	const batchN = 4
	r, pt := newProcPathRig(t, batchN)
	j := recovery.NewStateJournal()
	r.drv.EnableRecovery(j, 0)
	r.loadAndUp(t)
	sup := recovery.NewSupervisor(r.kern, r.drv, j, recovery.Config{})
	sup.Attach()

	received := 0
	r.drv.NetDevice().SetRxSink(func(p *knet.Packet) { received++ })
	frame := knet.NewPacket(r.drv.Adapter.MAC, [6]byte{9, 8, 7, 6, 5, 4}, 0x0800, 200)
	for i := 0; i < batchN; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("warmup inject %d failed", i)
		}
	}
	r.kern.DefaultWorkqueue().Drain()
	if received != batchN {
		t.Fatalf("warmup delivered %d frames, want %d", received, batchN)
	}

	bootPID := pt.WorkerPID()
	if !pt.KillWorker() {
		t.Fatal("no worker to kill")
	}
	// The next full batch flushes into the dead worker: the flush faults,
	// its frames drop with accounting, and the supervisor recovers.
	for i := 0; i < batchN; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("inject %d into dead-worker window failed", i)
		}
	}
	r.kern.DefaultWorkqueue().Drain()
	if received != batchN {
		t.Fatalf("frames delivered through a dead worker: %d", received)
	}
	if got := r.drv.Adapter.Stats.RxDropped; got != batchN {
		t.Fatalf("RxDropped = %d, want the whole faulted flush (%d)", got, batchN)
	}
	st := sup.Stats()
	if st.Faults < 1 || st.Recoveries != 1 || st.Replayed != 2 {
		t.Fatalf("supervisor stats = %+v", st)
	}
	c := r.drv.Runtime().Counters()
	if c.WorkerRespawns < 1 || !c.WorkerAlive {
		t.Fatalf("respawns=%d alive=%v after recovery", c.WorkerRespawns, c.WorkerAlive)
	}
	if pid := pt.WorkerPID(); pid == bootPID {
		t.Fatal("worker pid unchanged across recovery")
	}
	// The restarted driver delivers again.
	for i := 0; i < batchN; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("post-recovery inject %d failed", i)
		}
	}
	r.kern.DefaultWorkqueue().Drain()
	if received != 2*batchN {
		t.Fatalf("received %d frames after recovery, want %d", received, 2*batchN)
	}
}
