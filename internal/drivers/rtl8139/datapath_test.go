package rtl8139

import (
	"testing"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/rtl8139hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/ktime"
	"decafdrivers/internal/xpc"
)

func newDecafPathRig(t *testing.T, batchN int) *rig {
	t.Helper()
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 4<<20)
	kern := kernel.New(clock, bus)
	net := knet.New(kern)
	dev := rtl8139hw.New(bus, 11, 0xC000, [6]byte{0x00, 0xE0, 0x4C, 0x39, 0x13, 0x9A})
	drv := New(kern, net, dev, 0xC000, Config{
		Mode: xpc.ModeDecaf, IRQ: 11, DataPath: xpc.DataPathDecaf,
	})
	if batchN > 1 {
		drv.Runtime().SetTransport(xpc.BatchTransport{N: batchN})
	}
	return &rig{clock: clock, kern: kern, net: net, dev: dev, drv: drv}
}

// TestRxCoalescingFillsBatch checks that per-frame interrupts accumulate
// frames until the transport batch fills, then flush in one crossing.
func TestRxCoalescingFillsBatch(t *testing.T) {
	const batchN = 4
	r := newDecafPathRig(t, batchN)
	r.loadAndUp(t)
	r.drv.Runtime().ResetCounters()

	received := 0
	r.drv.NetDevice().SetRxSink(func(p *knet.Packet) { received++ })
	frame := knet.NewPacket(r.drv.Adapter.MAC, [6]byte{9, 8, 7, 6, 5, 4}, 0x0800, 200)
	for i := 0; i < batchN; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("inject %d failed", i)
		}
	}
	r.kern.DefaultWorkqueue().Drain()
	if received != batchN {
		t.Fatalf("received %d frames, want %d", received, batchN)
	}
	c := r.drv.Runtime().Counters()
	if c.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1 batched crossing for %d frames", c.Trips(), batchN)
	}
	if c.BatchedCalls != batchN {
		t.Fatalf("BatchedCalls = %d, want %d", c.BatchedCalls, batchN)
	}
	if got := r.drv.DecafRxFrames(); got != batchN {
		t.Fatalf("decaf driver saw %d frames, want %d", got, batchN)
	}
}

// TestRxCoalescingTimerFlushesPartialBatch checks that frames short of a
// full batch are not stranded: the coalescing timer closes the window.
func TestRxCoalescingTimerFlushesPartialBatch(t *testing.T) {
	r := newDecafPathRig(t, 8)
	r.loadAndUp(t)

	received := 0
	r.drv.NetDevice().SetRxSink(func(p *knet.Packet) { received++ })
	frame := knet.NewPacket(r.drv.Adapter.MAC, [6]byte{9, 8, 7, 6, 5, 4}, 0x0800, 200)
	for i := 0; i < 3; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("inject %d failed", i)
		}
	}
	r.kern.DefaultWorkqueue().Drain()
	if received != 0 {
		t.Fatal("partial batch flushed before the coalescing window closed")
	}
	// Let the coalescing timer fire, then drain the flush work it queued.
	r.clock.Advance(2 * rxCoalesceWindow)
	r.kern.DefaultWorkqueue().Drain()
	if received != 3 {
		t.Fatalf("received %d frames after window, want 3", received)
	}
}

// TestRxCoalescingRearmsAfterStop checks the coalescing timer re-arms after
// a Stop/Open cycle: a frame arriving post-reopen must still be flushed by
// the window, not stranded behind a stale armed flag.
func TestRxCoalescingRearmsAfterStop(t *testing.T) {
	r := newDecafPathRig(t, 8)
	r.loadAndUp(t)

	frame := knet.NewPacket(r.drv.Adapter.MAC, [6]byte{9, 8, 7, 6, 5, 4}, 0x0800, 200)
	// Arm the timer with one pending frame, then bounce the interface
	// before the window closes.
	if !r.dev.InjectRx(frame.Data) {
		t.Fatal("inject failed")
	}
	ctx := r.kern.NewContext("bounce")
	if err := r.drv.NetDevice().Down(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.drv.NetDevice().Up(ctx); err != nil {
		t.Fatal(err)
	}

	received := 0
	r.drv.NetDevice().SetRxSink(func(p *knet.Packet) { received++ })
	if !r.dev.InjectRx(frame.Data) {
		t.Fatal("inject after reopen failed")
	}
	r.clock.Advance(2 * rxCoalesceWindow)
	r.kern.DefaultWorkqueue().Drain()
	if received != 1 {
		t.Fatalf("received %d frames after reopen, want 1 (timer failed to re-arm)", received)
	}
}

// TestRxDecafPathAsyncTransport drives the decaf RX path through an
// AsyncTransport end to end: probe (with its nested inline downcalls and
// batched EEPROM walk), interrupt drains submitting through the ring, and
// Quiesce settling the in-flight flushes so every frame is delivered.
func TestRxDecafPathAsyncTransport(t *testing.T) {
	const batchN = 4
	r := newDecafPathRig(t, 1)
	r.drv.Runtime().SetTransport(xpc.NewAsyncTransport(xpc.AsyncConfig{Depth: 32, Batch: batchN}))
	defer r.drv.Runtime().SetTransport(nil)
	r.loadAndUp(t)
	r.drv.Runtime().ResetCounters()

	received := 0
	r.drv.NetDevice().SetRxSink(func(p *knet.Packet) { received++ })
	frame := knet.NewPacket(r.drv.Adapter.MAC, [6]byte{9, 8, 7, 6, 5, 4}, 0x0800, 200)
	for i := 0; i < 2*batchN; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("inject %d failed", i)
		}
	}
	r.kern.DefaultWorkqueue().Drain()
	ctx := r.kern.NewContext("settle")
	if err := r.drv.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if received != 2*batchN {
		t.Fatalf("received %d frames, want %d", received, 2*batchN)
	}
	if got := r.drv.DecafRxFrames(); got != 2*batchN {
		t.Fatalf("decaf driver saw %d frames, want %d", got, 2*batchN)
	}
	c := r.drv.Runtime().Counters()
	if c.Trips() == 0 || c.Trips() > 2*batchN {
		t.Fatalf("Trips = %d, want coalesced crossings", c.Trips())
	}
	if c.InFlight != 0 {
		t.Fatalf("InFlight = %d after Quiesce", c.InFlight)
	}
}

// TestProbeEEPROMWalkBatched checks the probe-time EEPROM walk coalesces
// through the Batch downcall builder: under a batched transport the 32-word
// walk plus the Cfg9346 lock dance costs a few crossings, not one per word.
func TestProbeEEPROMWalkBatched(t *testing.T) {
	r := newDecafPathRig(t, 16)
	r.loadAndUp(t)
	c := r.drv.Runtime().Counters()
	// 34 same-direction downcalls (unlock + 32 words + lock) at MaxBatch 16
	// is 3 crossings; the rest of probe/open adds a handful more. Without
	// batching the walk alone would cost 34.
	if c.Downcalls >= 34 {
		t.Fatalf("Downcalls = %d, want the EEPROM walk coalesced (< 34)", c.Downcalls)
	}
	if c.PerCall["rtl8139_read_eeprom"] != 32 {
		t.Fatalf("EEPROM reads = %d, want 32", c.PerCall["rtl8139_read_eeprom"])
	}
	if r.drv.DecafAdapter.EEPROM[0] != 0x8129 {
		t.Fatalf("EEPROM signature = %#x", r.drv.DecafAdapter.EEPROM[0])
	}
}

// TestRxPendingPurgedOnStop checks ifdown drops coalesced-but-unflushed
// frames instead of delivering through a closing driver.
func TestRxPendingPurgedOnStop(t *testing.T) {
	r := newDecafPathRig(t, 8)
	r.loadAndUp(t)

	frame := knet.NewPacket(r.drv.Adapter.MAC, [6]byte{9, 8, 7, 6, 5, 4}, 0x0800, 200)
	for i := 0; i < 2; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("inject %d failed", i)
		}
	}
	ctx := r.kern.NewContext("ifdown")
	if err := r.drv.NetDevice().Down(ctx); err != nil {
		t.Fatal(err)
	}
	if got := r.drv.Adapter.Stats.RxDropped; got != 2 {
		t.Fatalf("RxDropped = %d, want the 2 purged frames", got)
	}
}
