package rtl8139

import (
	"testing"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/recovery"
	"decafdrivers/internal/xpc"
)

// exhaustDMA drains the arena down to sub-page crumbs so any driver-sized
// allocation must fail.
func exhaustDMA(dma *hw.DMAMemory) {
	for _, chunk := range []int{1 << 20, 4096, 64} {
		for {
			if _, err := dma.Alloc(chunk, 1); err != nil {
				break
			}
		}
	}
}

// TestOpenFailsCleanlyOnDMAExhaustion: a failed rtl8139_open releases every
// partially acquired buffer (the exception handler frees on the unwind
// path) and leaves the interface down but reusable.
func TestOpenFailsCleanlyOnDMAExhaustion(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	dma := r.kern.Bus().DMA()
	exhaustDMA(dma)
	inUse := dma.InUse()

	ctx := r.kern.NewContext("ifup")
	if err := r.drv.NetDevice().Up(ctx); err == nil {
		t.Fatal("interface came up with an exhausted DMA arena")
	}
	if got := dma.InUse(); got != inUse {
		t.Fatalf("failed open leaked %d allocations", got-inUse)
	}
	if r.drv.NetDevice().IsUp() {
		t.Fatal("netdev marked up after failed open")
	}
}

// TestInjectedRxFaultContained: a decaf-side panic injected into the RX
// inspection path drops only its own flush — the drop is accounted, the
// kernel survives, and later frames deliver normally.
func TestInjectedRxFaultContained(t *testing.T) {
	const batchN = 4
	r := newDecafPathRig(t, batchN)
	r.loadAndUp(t)
	nth := 0
	r.drv.Runtime().SetFaultInjector(func(call string) bool {
		if call != "rtl8139_rx_frame" {
			return false
		}
		nth++
		return nth == 2
	})

	received := 0
	r.drv.NetDevice().SetRxSink(func(p *knet.Packet) { received++ })
	frame := knet.NewPacket(r.drv.Adapter.MAC, [6]byte{9, 8, 7, 6, 5, 4}, 0x0800, 200)
	for i := 0; i < batchN; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("inject %d failed", i)
		}
	}
	r.kern.DefaultWorkqueue().Drain()
	if received != 0 {
		t.Fatalf("faulted flush delivered %d frames", received)
	}
	if got := r.drv.Adapter.Stats.RxDropped; got != batchN {
		t.Fatalf("RxDropped = %d, want %d (whole faulted flush)", got, batchN)
	}
	c := r.drv.Runtime().Counters()
	if c.Faults != 1 || c.FaultsInjected != 1 {
		t.Fatalf("Faults=%d FaultsInjected=%d", c.Faults, c.FaultsInjected)
	}
	// The kernel survives: the next batch delivers.
	for i := 0; i < batchN; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("post-fault inject %d failed", i)
		}
	}
	r.kern.DefaultWorkqueue().Drain()
	if received != batchN {
		t.Fatalf("received %d frames after contained fault, want %d", received, batchN)
	}
}

// TestRecoveryRestoresConfigAfterRxFault is the driver-level recovery
// fixture: an injected RX fault under supervision restarts the decaf side
// and the replayed journal (probe + ifup) rebuilds an identical
// configuration — EEPROM shadow, MAC, running chip.
func TestRecoveryRestoresConfigAfterRxFault(t *testing.T) {
	const batchN = 4
	r := newDecafPathRig(t, batchN)
	j := recovery.NewStateJournal()
	r.drv.EnableRecovery(j, 0)
	r.loadAndUp(t)
	sup := recovery.NewSupervisor(r.kern, r.drv, j, recovery.Config{})
	sup.Attach()
	if j.Len() != 2 {
		t.Fatalf("journal has %d entries after boot, want probe+ifup", j.Len())
	}

	pre := *r.drv.Adapter
	nth := 0
	r.drv.Runtime().SetFaultInjector(func(call string) bool {
		if call != "rtl8139_rx_frame" {
			return false
		}
		nth++
		return nth == 1
	})

	received := 0
	r.drv.NetDevice().SetRxSink(func(p *knet.Packet) { received++ })
	frame := knet.NewPacket(r.drv.Adapter.MAC, [6]byte{9, 8, 7, 6, 5, 4}, 0x0800, 200)
	for i := 0; i < batchN; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("inject %d failed", i)
		}
	}
	// Drain runs the faulted flush AND the supervisor's whole restart
	// (immediate policy: everything completes inside one drain).
	r.kern.DefaultWorkqueue().Drain()

	st := sup.Stats()
	if st.Recoveries != 1 || st.State != recovery.StateMonitoring {
		t.Fatalf("supervisor stats = %+v", st)
	}
	a := r.drv.Adapter
	if a.MAC != pre.MAC || a.EEPROM != pre.EEPROM {
		t.Fatalf("post-recovery kernel config differs:\npre  %+v\npost %+v", pre, *a)
	}
	if r.drv.DecafAdapter.MAC != pre.MAC || r.drv.DecafAdapter.EEPROM != pre.EEPROM {
		t.Fatal("post-recovery decaf config differs from pre-fault")
	}
	// The restarted driver receives again (chip re-started, IRQ re-wired).
	for i := 0; i < batchN; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("post-recovery inject %d failed", i)
		}
	}
	r.kern.DefaultWorkqueue().Drain()
	if received != batchN {
		t.Fatalf("received %d frames after recovery, want %d", received, batchN)
	}
}
