package rtl8139

import (
	"testing"
	"time"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/rtl8139hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/ktime"
	"decafdrivers/internal/xpc"
)

// newAdaptiveRig boots a decaf-data-path rig with an explicit coalescing
// window (0 selects the adaptive mode under test).
func newAdaptiveRig(t *testing.T, batchN int, window time.Duration) *rig {
	t.Helper()
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 4<<20)
	kern := kernel.New(clock, bus)
	net := knet.New(kern)
	dev := rtl8139hw.New(bus, 11, 0xC000, [6]byte{0x00, 0xE0, 0x4C, 0x39, 0x13, 0x9A})
	drv := New(kern, net, dev, 0xC000, Config{
		Mode: xpc.ModeDecaf, IRQ: 11, DataPath: xpc.DataPathDecaf,
		RxCoalesceWindow: window,
	})
	drv.Runtime().SetTransport(xpc.BatchTransport{N: batchN})
	return &rig{clock: clock, kern: kern, net: net, dev: dev, drv: drv}
}

// injectPaced injects n frames spaced `gap` apart on the virtual clock,
// feeding the driver's interarrival EWMA.
func (r *rig) injectPaced(t *testing.T, n int, gap time.Duration) {
	t.Helper()
	frame := knet.NewPacket(r.drv.Adapter.MAC, [6]byte{9, 8, 7, 6, 5, 4}, 0x0800, 200)
	for i := 0; i < n; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("inject %d failed", i)
		}
		r.kern.DefaultWorkqueue().Drain()
		r.clock.Advance(gap)
	}
}

// TestAdaptiveWindowTracksInterarrival checks the self-tuning window: at a
// steady 50µs interarrival and batch 8, the window settles at interarrival
// × batch × 5/4 = 500µs — a quarter of the fixed 2 ms default — so partial
// batches flush as soon as the traffic warrants.
func TestAdaptiveWindowTracksInterarrival(t *testing.T) {
	r := newAdaptiveRig(t, 8, 0)
	r.loadAndUp(t)
	if got := r.drv.RxCoalesceWindow(); got != rxCoalesceWindow {
		t.Fatalf("window before any traffic = %v, want the 2 ms default", got)
	}
	r.injectPaced(t, 16, 50*time.Microsecond)
	want := 50 * time.Microsecond * 8 * 5 / 4
	if got := r.drv.RxCoalesceWindow(); got != want {
		t.Fatalf("adaptive window = %v, want %v", got, want)
	}
}

// TestAdaptiveWindowClamps checks both clamp edges: back-to-back frames
// cannot push the window below 100µs, and slow traffic cannot hold frames
// longer than the 2 ms ceiling.
func TestAdaptiveWindowClamps(t *testing.T) {
	fast := newAdaptiveRig(t, 8, 0)
	fast.loadAndUp(t)
	fast.injectPaced(t, 16, time.Microsecond) // raw window 10µs
	if got := fast.drv.RxCoalesceWindow(); got != rxCoalesceMin {
		t.Fatalf("fast-traffic window = %v, want the %v floor", got, rxCoalesceMin)
	}

	slow := newAdaptiveRig(t, 8, 0)
	slow.loadAndUp(t)
	slow.injectPaced(t, 4, 10*time.Millisecond) // raw window 100ms
	if got := slow.drv.RxCoalesceWindow(); got != rxCoalesceWindow {
		t.Fatalf("slow-traffic window = %v, want the %v ceiling", got, rxCoalesceWindow)
	}
}

// TestExplicitWindowOverridesAdaptive checks RxCoalesceWindow as an explicit
// override: observations do not move it.
func TestExplicitWindowOverridesAdaptive(t *testing.T) {
	const fixed = 700 * time.Microsecond
	r := newAdaptiveRig(t, 8, fixed)
	r.loadAndUp(t)
	r.injectPaced(t, 16, 50*time.Microsecond)
	if got := r.drv.RxCoalesceWindow(); got != fixed {
		t.Fatalf("overridden window = %v, want %v", got, fixed)
	}
}

// TestAdaptiveWindowFlushesPartialBatch checks the adaptive window actually
// drives the coalescing timer: once the EWMA has settled at a high rate, a
// stranded partial batch flushes within the adaptive window — well before
// the fixed 2 ms default would have fired.
func TestAdaptiveWindowFlushesPartialBatch(t *testing.T) {
	r := newAdaptiveRig(t, 8, 0)
	r.loadAndUp(t)
	// Settle the EWMA at 50µs interarrival (adaptive window 500µs). The
	// pacing drains each full batch as it flushes; the stragglers follow at
	// the same rate, so the idle-gap sample cannot widen the window first.
	r.injectPaced(t, 16, 50*time.Microsecond)

	received := 0
	r.drv.NetDevice().SetRxSink(func(p *knet.Packet) { received++ })
	frame := knet.NewPacket(r.drv.Adapter.MAC, [6]byte{9, 8, 7, 6, 5, 4}, 0x0800, 200)
	for i := 0; i < 3; i++ {
		if !r.dev.InjectRx(frame.Data) {
			t.Fatalf("inject %d failed", i)
		}
	}
	r.kern.DefaultWorkqueue().Drain()
	if received != 0 {
		t.Fatal("partial batch flushed before any window closed")
	}
	// 600µs > the 500µs adaptive window but < the 2 ms fixed default.
	r.clock.Advance(600 * time.Microsecond)
	r.kern.DefaultWorkqueue().Drain()
	if received != 3 {
		t.Fatalf("received %d frames after the adaptive window, want 3", received)
	}
}
