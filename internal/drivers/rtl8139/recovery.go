package rtl8139

import (
	"decafdrivers/internal/decaf"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/recovery"
	"decafdrivers/internal/xpc"
)

// DefaultTxHoldLimit bounds the frames the net-device recovery proxy holds
// for replay during an outage.
const DefaultTxHoldLimit = 64

// EnableRecovery attaches the shadow-driver state journal and arms the
// driver for supervision: probe and ifup are journaled for replay and the
// net-device proxy holds up to holdLimit TX frames during an outage (<=0
// selects DefaultTxHoldLimit). Call before LoadModule so the probe is
// journaled.
func (d *Driver) EnableRecovery(j *recovery.StateJournal, holdLimit int) {
	if holdLimit <= 0 {
		holdLimit = DefaultTxHoldLimit
	}
	d.journal = j
	d.holdLimit = holdLimit
}

// journalProbe records the probe (chip reset, EEPROM identification) as the
// first replayable configuration crossing.
func (d *Driver) journalProbe() {
	if d.journal == nil {
		return
	}
	d.journal.Record(recovery.Entry{
		Key:  "probe",
		Name: "rtl8139_probe",
		Replay: func(ctx *kernel.Context) error {
			return d.rt.Upcall(ctx, "rtl8139_probe", func(uctx *kernel.Context) error {
				return decaf.ToError(decaf.Try(func() { d.probeDecaf(uctx) }))
			}, d.Adapter)
		},
	})
}

// journalOpen records the interface bring-up (buffers, IRQ, chip start);
// Stop removes it.
func (d *Driver) journalOpen() {
	if d.journal == nil {
		return
	}
	d.journal.Record(recovery.Entry{
		Key:  "ifup",
		Name: "rtl8139_open",
		Replay: func(ctx *kernel.Context) error {
			err := d.rt.Upcall(ctx, "rtl8139_open", func(uctx *kernel.Context) error {
				return decaf.ToError(decaf.Try(func() { d.openDecaf(uctx) }))
			}, d.Adapter)
			if err != nil {
				return err
			}
			if d.dev.LinkUp() {
				d.netdev.CarrierOn()
			}
			return nil
		},
	})
}

// RecoveryName implements recovery.Target.
func (d *Driver) RecoveryName() string { return "8139too" }

// BeginOutage implements recovery.Target. Idempotent for retried restarts.
func (d *Driver) BeginOutage(ctx *kernel.Context) {
	d.recovering = true
	d.netdev.BeginRecovery(d.holdLimit)
}

// TeardownForRecovery implements recovery.Target: quiesce the RX pipeline
// (settled flushes deliver, faulted ones drop, slots release), purge the
// coalescing queue with accounting, then release the kernel-side resources
// directly — the decaf side is suspect, so no crossings; the ifup replay
// rebuilds buffers, IRQ and chip state.
func (d *Driver) TeardownForRecovery(ctx *kernel.Context) error {
	d.rxTimer.Stop()
	d.rxFlushArmed = false
	if n := len(d.rxPending); n > 0 {
		d.rxPending = nil
		d.Adapter.Stats.RxDropped += uint64(n)
	}
	_ = d.rxInFlight.Drain(ctx, d.deliverFrames, d.dropFrames)
	_ = d.rt.DrainCrossings(ctx)

	d.stopChip(ctx)
	_ = d.kern.FreeIRQ(d.irq, "8139too")
	d.freeBuffers(ctx)
	return nil
}

// ResetDecafState implements recovery.Target: a fresh shared adapter copy;
// the kernel-side adapter and the registered net device survive. Adaptive
// coalescing soft state (the interarrival EWMA) deliberately resets with the
// decaf side — it is re-learned, not replayed.
func (d *Driver) ResetDecafState(ctx *kernel.Context) error {
	if d.rt.Mode != xpc.ModeDecaf {
		return nil
	}
	d.rt.Unshare(d.Adapter)
	d.DecafAdapter = &Adapter{}
	if _, err := d.rt.Share(d.Adapter, d.DecafAdapter); err != nil {
		return err
	}
	d.rxEwma, d.rxLastFrameAt = 0, 0
	return nil
}

// ResumeFromRecovery implements recovery.Target.
func (d *Driver) ResumeFromRecovery(ctx *kernel.Context) (replayed, dropped uint64) {
	d.recovering = false
	rep, drp := d.netdev.EndRecovery(ctx)
	return uint64(rep), uint64(drp)
}

// FailStop implements recovery.Target: held frames drop, carrier goes off,
// d.recovering stays set so no further decaf crossings are attempted.
func (d *Driver) FailStop(ctx *kernel.Context) {
	d.netdev.AbortRecovery()
	d.Adapter.LinkUp = false
}
