package rtl8139

import (
	"time"

	"decafdrivers/internal/decaf/registry"
)

// cellRxFrames is the decaf data path's frame count, kept in a shared state
// cell (registered at package init so parent and re-exec'd worker agree on
// the index) rather than an adapter field: under a process-separated
// transport the RX body increments it from the worker's address space and
// the harness reads it through the same mapping.
var cellRxFrames = registry.RegisterCell("rtl8139.decaf_rx_frames")

// decafRxFrameCost is the user-level per-frame inspection cost in the decaf
// data path.
const decafRxFrameCost = 900 * time.Nanosecond

// rtl8139_rx_frame is the decaf-driver RX body in the decaf data path:
// user-level inspection and accounting of one drained frame. Registered in
// the handler table so a process-separated transport executes it in the
// worker process.
//
//decaf:boundary
func init() {
	registry.Register("rtl8139_rx_frame", registry.Handler{
		Cost: decafRxFrameCost,
		Fn: func(c *registry.Ctx) error {
			c.State.Add(cellRxFrames, 1)
			return nil
		},
	})
}

// DecafRxFrames reads the decaf data path's frame count from the shared
// state cells.
func (d *Driver) DecafRxFrames() uint64 { return d.rt.SharedState().Load(cellRxFrames) }
