package psmouse

import (
	"testing"

	"decafdrivers/internal/hw"
	"decafdrivers/internal/hw/ps2hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/kinput"
	"decafdrivers/internal/ktime"
	"decafdrivers/internal/xpc"
)

type rig struct {
	kern  *kernel.Kernel
	in    *kinput.Subsystem
	port  *kinput.SerioPort
	mouse *ps2hw.Mouse
	drv   *Driver
}

func newRig(t *testing.T, mode xpc.Mode) *rig {
	t.Helper()
	clock := ktime.NewClock()
	bus := hw.NewBus(clock, 1<<20)
	kern := kernel.New(clock, bus)
	in := kinput.New(kern)
	port := kinput.NewSerioPort()
	mouse := ps2hw.New(port, bus.IRQ(12))
	drv := New(kern, in, port, Config{Mode: mode, IRQ: 12})
	return &rig{kern: kern, in: in, port: port, mouse: mouse, drv: drv}
}

func TestProbeDetectsIntelliMouse(t *testing.T) {
	for _, mode := range []xpc.Mode{xpc.ModeNative, xpc.ModeDecaf} {
		r := newRig(t, mode)
		if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
			t.Fatal(err)
		}
		if r.drv.State.Protocol != "ImPS/2" {
			t.Errorf("%v: protocol = %q, want ImPS/2 (knock detected)", mode, r.drv.State.Protocol)
		}
		if r.drv.State.MouseID != ps2hw.IDIntelliMouse {
			t.Errorf("%v: id = %d", mode, r.drv.State.MouseID)
		}
		if !r.mouse.Reporting() {
			t.Errorf("%v: reporting not enabled after probe", mode)
		}
		if _, ok := r.in.Device("psmouse"); !ok {
			t.Errorf("%v: input device not registered", mode)
		}
	}
}

func TestMovementGeneratesEvents(t *testing.T) {
	for _, mode := range []xpc.Mode{xpc.ModeNative, xpc.ModeDecaf} {
		r := newRig(t, mode)
		if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
			t.Fatal(err)
		}
		var rels, keys int
		var lastDx int
		dev := r.drv.InputDevice()
		dev.SetSink(func(e kinput.Event) {
			switch e.Type {
			case "rel":
				rels++
				if e.Code == "REL_X" {
					lastDx = e.Value
				}
			case "key":
				keys++
			}
		})
		if !r.mouse.Move(5, -3, true, false) {
			t.Fatalf("%v: Move rejected", mode)
		}
		if rels != 2 || keys != 2 {
			t.Fatalf("%v: rels=%d keys=%d", mode, rels, keys)
		}
		if lastDx != 5 {
			t.Fatalf("%v: dx = %d", mode, lastDx)
		}
		_, syncs := dev.Counts()
		if syncs != 1 {
			t.Fatalf("%v: syncs = %d", mode, syncs)
		}
	}
}

func TestNegativeMotionSignExtends(t *testing.T) {
	r := newRig(t, xpc.ModeNative)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	var dy int
	r.drv.InputDevice().SetSink(func(e kinput.Event) {
		if e.Code == "REL_Y" {
			dy = e.Value
		}
	})
	r.mouse.Move(0, -7, false, false)
	if dy != -7 {
		t.Fatalf("dy = %d, want -7", dy)
	}
}

func TestDecafInitCrossings(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	c := r.drv.Runtime().Counters()
	// Paper Table 3: 24 crossings for psmouse initialization.
	if c.Trips() < 8 || c.Trips() > 40 {
		t.Fatalf("init crossings = %d, want ~8-40 (paper: 24)", c.Trips())
	}
}

func TestSteadyStateMovementNoCrossings(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	r.drv.Runtime().ResetCounters()
	for i := 0; i < 300; i++ {
		r.mouse.Move(1, 1, false, false)
	}
	if c := r.drv.Runtime().Counters(); c.Trips() != 0 {
		t.Fatalf("movement crossed %d times (paper: the mouse workload never invokes the decaf driver)", c.Trips())
	}
	if r.drv.State.Reports != 300 {
		t.Fatalf("reports = %d", r.drv.State.Reports)
	}
}

func TestMoveBeforeEnableDropped(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	if r.mouse.Move(1, 1, false, false) {
		t.Fatal("movement accepted before enable")
	}
}

func TestUnload(t *testing.T) {
	r := newRig(t, xpc.ModeDecaf)
	if _, err := r.kern.LoadModule(r.drv.Module()); err != nil {
		t.Fatal(err)
	}
	if err := r.kern.UnloadModule("psmouse"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.in.Device("psmouse"); ok {
		t.Fatal("input device still registered")
	}
	if r.drv.Runtime().SharedCount() != 0 {
		t.Fatal("shared objects leaked")
	}
}
