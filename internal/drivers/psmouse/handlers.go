package psmouse

import (
	"time"

	"decafdrivers/internal/decaf/registry"
	"decafdrivers/internal/hw/ps2hw"
	"decafdrivers/internal/kernel"
)

// Shared state cells for the detection results: the detect body runs in the
// worker under a process-separated transport, so its findings travel back
// through the shared cells rather than struct fields.
var (
	cellMouseID    = registry.RegisterCell("psmouse.mouse_id")
	cellRate       = registry.RegisterCell("psmouse.rate")
	cellResolution = registry.RegisterCell("psmouse.resolution")
)

// detectBodyCost is the user-level work of the detection pass, excluding its
// serio command downcalls (which dominate).
const detectBodyCost = 500 * time.Nanosecond

// psCmd issues one PS/2 command through the packed psmouse_cmd downcall:
// the command byte, optional argument, and expected response length travel
// in one scalar (cmd<<24 | hasArg<<16 | arg<<8 | respLen), and up to four
// response bytes come back packed little-endian in the result — the
// serialized command surface process separation forces on the serio path.
func psCmd(c *registry.Ctx, cmd byte, arg *byte, respLen int) (uint64, error) {
	req := uint64(cmd)<<24 | uint64(respLen&0xFF)
	if arg != nil {
		req |= 1<<16 | uint64(*arg)<<8
	}
	return c.Downcall("psmouse_cmd", req)
}

// psmouse_detect is the device-interrogation half of probe: protocol
// detection (the IntelliMouse rate knock), rate/resolution programming, and
// reporting enable. Registered in the handler table so a process-separated
// transport executes it in the worker; the reset/self-test half stays a
// kernel-adjacent closure upcall (psmouse.go).
//
//decaf:boundary
func init() {
	registry.Register("psmouse_detect", registry.Handler{
		Cost: detectBodyCost,
		Down: true,
		Fn: func(c *registry.Ctx) error {
			getID := func() (byte, error) {
				r, err := psCmd(c, ps2hw.CmdGetID, nil, 1)
				return byte(r), err
			}
			setRate := func(rate byte) error {
				_, err := psCmd(c, ps2hw.CmdSetRate, &rate, 0)
				return err
			}

			// Baseline identity.
			id, err := getID()
			if err != nil {
				return err
			}

			// IntelliMouse detection: the 200/100/80 sample-rate knock.
			for _, rate := range []byte{200, 100, 80} {
				if err := setRate(rate); err != nil {
					return err
				}
			}
			if id, err = getID(); err != nil {
				return err
			}

			// IntelliMouse Explorer detection: the 200/200/80 knock (a
			// further protocol probe the real driver always attempts).
			for _, rate := range []byte{200, 200, 80} {
				if err := setRate(rate); err != nil {
					return err
				}
			}
			exID, err := getID()
			if err != nil {
				return err
			}
			if exID > id {
				id = exID
			}
			c.State.Store(cellMouseID, uint64(id))

			// Operating parameters: the real driver programs them once
			// during detection and again in psmouse_initialize.
			for i := 0; i < 2; i++ {
				if err := setRate(100); err != nil {
					return err
				}
				c.State.Store(cellRate, 100)
				res := byte(3) // 8 counts/mm
				if _, err := psCmd(c, ps2hw.CmdSetResolution, &res, 0); err != nil {
					return err
				}
				c.State.Store(cellResolution, uint64(res))
			}

			// Final identity confirmation after programming.
			if _, err := getID(); err != nil {
				return err
			}

			// Enable stream mode.
			_, err = psCmd(c, ps2hw.CmdEnable, nil, 0)
			return err
		},
	})
}

// registerDowncalls installs the kernel-side serio command target the detect
// body names; per-Runtime, so each driver instance's handlers reach its
// port.
func (d *Driver) registerDowncalls() {
	d.rt.RegisterDowncall("psmouse_cmd", func(kctx *kernel.Context, req uint64) (uint64, error) {
		cmd := byte(req >> 24)
		var argp *byte
		if req>>16&1 != 0 {
			a := byte(req >> 8)
			argp = &a
		}
		respLen := int(req & 0xFF)
		resp, err := d.ps2Command(kctx, cmd, argp, respLen)
		if err != nil {
			return 0, err
		}
		var packed uint64
		for i, b := range resp {
			if i >= cmdTimeoutBytes {
				break
			}
			packed |= uint64(b) << (8 * i)
		}
		return packed, nil
	})
}

// adoptDetection copies the detect handler's cell results into the kernel
// state structure and derives the protocol name — the kernel-resident view
// of what the (possibly remote) detection established.
func (d *Driver) adoptDetection() {
	st := d.rt.SharedState()
	d.State.MouseID = int32(st.Load(cellMouseID))
	d.State.Rate = int32(st.Load(cellRate))
	d.State.Resolution = int32(st.Load(cellResolution))
	if byte(d.State.MouseID) == ps2hw.IDIntelliMouse {
		d.State.Protocol = "ImPS/2"
	} else {
		d.State.Protocol = "PS/2"
	}
	d.State.Name = "psmouse"
}
