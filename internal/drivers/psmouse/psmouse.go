// Package psmouse is the Decaf conversion of the PS/2 mouse driver. Per the
// paper (§4.1), "most of the user-level code was device-specific.
// Consequently, we implemented in Java only those functions that were
// actually called for our mouse device": protocol detection and device
// initialization live in the decaf driver; the byte-stream interrupt
// handler and packet parser stay in the nucleus.
package psmouse

import (
	"fmt"
	"time"

	"decafdrivers/internal/decaf"
	"decafdrivers/internal/hw/ps2hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/kinput"
	"decafdrivers/internal/xdr"
	"decafdrivers/internal/xpc"
)

// ProtoException is the decaf driver's checked exception class.
const ProtoException = "PsmouseProtocolException"

// Per-report CPU cost in the interrupt path.
const reportCost = 2 * time.Microsecond

// cmdTimeoutBytes bounds how many response bytes a command waits for.
const cmdTimeoutBytes = 4

// State is the psmouse structure shared across domains.
type State struct {
	Name       string
	Protocol   string
	MouseID    int32
	Rate       int32
	Resolution int32

	// Kernel-only parser state.
	PktBytes  [4]byte
	PktLen    int32
	Reports   uint64
	IntrCount uint64
}

// FieldMask is DriverSlicer's marshaling specification.
func FieldMask() xdr.FieldMask {
	return xdr.FieldMask{"State": {
		"Name": true, "Protocol": true, "MouseID": true, "Rate": true, "Resolution": true,
	}}
}

// Config configures a driver instance.
type Config struct {
	Mode xpc.Mode
	IRQ  int
}

// Driver is one bound psmouse instance.
type Driver struct {
	kern *kernel.Kernel
	in   *kinput.Subsystem
	port *kinput.SerioPort
	rt   *xpc.Runtime
	irq  int

	State      *State
	DecafState *State

	input *kinput.Device

	// command/response plumbing (nucleus).
	respBuf []byte
	inCmd   bool
}

// New binds the driver to a serio port.
func New(k *kernel.Kernel, in *kinput.Subsystem, port *kinput.SerioPort, cfg Config) *Driver {
	d := &Driver{
		kern: k, in: in, port: port, irq: cfg.IRQ,
		State: &State{},
	}
	d.rt = xpc.NewRuntime(k, "psmouse", cfg.Mode, FieldMask())
	d.rt.DisableIRQs = []int{cfg.IRQ}
	if cfg.Mode == xpc.ModeNative {
		d.DecafState = d.State
	} else {
		d.DecafState = &State{}
		if _, err := d.rt.Share(d.State, d.DecafState); err != nil {
			panic(fmt.Sprintf("psmouse: share state: %v", err))
		}
	}
	port.ConnectDriver(d.receiveByte)
	d.registerDowncalls()
	return d
}

// Runtime exposes the XPC runtime.
func (d *Driver) Runtime() *xpc.Runtime { return d.rt }

// InputDevice returns the registered input device (after module init).
func (d *Driver) InputDevice() *kinput.Device { return d.input }

// --- nucleus ---

// receiveByte is the serio interrupt path: every byte from the mouse lands
// here in (conceptually) IRQ context. During command execution bytes are
// responses; in stream mode they are report bytes parsed into input events.
func (d *Driver) receiveByte(b byte) {
	s := d.State
	s.IntrCount++
	if d.inCmd {
		d.respBuf = append(d.respBuf, b)
		return
	}
	s.PktBytes[s.PktLen] = b
	s.PktLen++
	if s.PktLen < 3 {
		return
	}
	s.PktLen = 0
	d.processPacket(s.PktBytes[0], s.PktBytes[1], s.PktBytes[2])
}

// processPacket decodes one three-byte report (nucleus data path).
func (d *Driver) processPacket(flags, dxB, dyB byte) {
	if d.input == nil {
		return
	}
	dx, dy := int(int8(dxB)), int(int8(dyB))
	d.State.Reports++
	d.input.ReportRel("REL_X", dx)
	d.input.ReportRel("REL_Y", dy)
	d.input.ReportKey("BTN_LEFT", int(flags&0x01))
	d.input.ReportKey("BTN_RIGHT", int(flags>>1&0x01))
	d.input.Sync()
}

// ps2Command is a kernel entry point: send a command byte (plus optional
// argument) and collect the expected response bytes. Serio access must be
// serialized in the kernel.
func (d *Driver) ps2Command(ctx *kernel.Context, cmd byte, arg *byte, respLen int) ([]byte, error) {
	d.inCmd = true
	d.respBuf = nil
	defer func() { d.inCmd = false }()

	if err := d.port.Write(cmd); err != nil {
		return nil, err
	}
	// Command settle times: a reset runs the mouse's self-test (~20 ms);
	// other commands take about a millisecond on the 12 kHz serial link.
	if cmd == ps2hw.CmdReset {
		ctx.MSleep(20)
	} else {
		ctx.MSleep(1)
	}
	if len(d.respBuf) == 0 || d.respBuf[0] != ps2hw.RespAck {
		return nil, fmt.Errorf("psmouse: command %#x not acknowledged", cmd)
	}
	if arg != nil {
		d.respBuf = nil
		if err := d.port.Write(*arg); err != nil {
			return nil, err
		}
		if len(d.respBuf) == 0 || d.respBuf[0] != ps2hw.RespAck {
			return nil, fmt.Errorf("psmouse: argument %#x not acknowledged", *arg)
		}
	}
	resp := d.respBuf
	if len(resp) > 0 {
		resp = resp[1:] // strip the ACK
	}
	if len(resp) < respLen {
		return nil, fmt.Errorf("psmouse: command %#x returned %d bytes, want %d", cmd, len(resp), respLen)
	}
	if respLen > cmdTimeoutBytes {
		respLen = cmdTimeoutBytes
	}
	return resp[:respLen], nil
}

// --- decaf driver ---

// command wraps ps2Command in a downcall and converts failures to
// exceptions.
//
//decaf:boundary
func (d *Driver) command(uctx *kernel.Context, name string, cmd byte, arg *byte, respLen int) []byte {
	var resp []byte
	err := d.rt.Downcall(uctx, name, func(kctx *kernel.Context) error {
		r, err := d.ps2Command(kctx, cmd, arg, respLen)
		resp = r
		return err
	})
	if err != nil {
		decaf.ThrowCause(ProtoException, err, "command %#x", cmd)
	}
	return resp
}

// resetDecaf is the reset half of the probe: reset the mouse and verify its
// self-test, then make sure stream mode is off before detection. Written in
// exception style as a closure upcall; the detection half is the registered
// psmouse_detect handler (handlers.go), which a process-separated transport
// executes in the worker.
//
//decaf:boundary
func (d *Driver) resetDecaf(uctx *kernel.Context) {
	// Reset: expect self-test OK + id.
	resp := d.command(uctx, "psmouse_reset", ps2hw.CmdReset, nil, 2)
	if resp[0] != ps2hw.RespSelfTestOK {
		decaf.Throw(ProtoException, "self-test failed: %#x", resp[0])
	}

	// Make sure stream mode is off during detection.
	d.command(uctx, "psmouse_disable", ps2hw.CmdDisable, nil, 0)
}

// --- module glue ---

// Module adapts the driver to the module loader.
func (d *Driver) Module() kernel.Module { return (*psmouseModule)(d) }

type psmouseModule Driver

// ModuleName implements kernel.Module.
func (m *psmouseModule) ModuleName() string { return "psmouse" }

// Init probes the protocol through the decaf driver and registers the input
// device.
func (m *psmouseModule) Init(ctx *kernel.Context) error {
	d := (*Driver)(m)
	err := d.rt.Upcall(ctx, "psmouse_probe", func(uctx *kernel.Context) error {
		return decaf.ToError(decaf.Try(func() { d.resetDecaf(uctx) }))
	}, d.State)
	if err != nil {
		return fmt.Errorf("psmouse: probe: %w", err)
	}
	// Detection runs through the handler table — in the worker's address
	// space under a process-separated transport — and reports through the
	// shared state cells, adopted into the kernel state here.
	if err := d.rt.UpcallHandler(ctx, "psmouse_detect"); err != nil {
		return fmt.Errorf("psmouse: detect: %w", err)
	}
	d.adoptDetection()
	dev, err := d.in.Register(d.State.Name)
	if err != nil {
		return err
	}
	d.input = dev
	return nil
}

// Exit unregisters the input device.
func (m *psmouseModule) Exit(ctx *kernel.Context) {
	d := (*Driver)(m)
	if d.input != nil {
		_ = d.in.Unregister(d.input.Name)
		d.input = nil
	}
	if d.rt.Mode == xpc.ModeDecaf {
		d.rt.Unshare(d.State)
	}
}

// ChargeReport lets the workload charge the per-report interrupt cost (the
// serio path here is callback-based rather than context-based).
func (d *Driver) ChargeReport(ctx *kernel.Context) {
	ctx.Charge(reportCost)
}
