// Command decafrun boots a simulated machine, loads one of the five
// converted drivers in native or decaf deployment, runs its Table 3
// workload, and reports throughput, CPU utilization, initialization latency
// and crossing counts.
//
// Usage:
//
//	decafrun -driver e1000 -mode decaf -dur 10s
//	decafrun -driver psmouse -mode native
//	decafrun -driver e1000 -transport proc -batch 16   # decaf side in a real worker process
//	decafrun -driver e1000 -transport proc -trace run.json   # flight-recorder timeline (Perfetto)
//	decafrun -driver e1000 -metrics 127.0.0.1:9431           # live Prometheus + expvar endpoint
//	decafrun -driver e1000 -metrics-out counters.prom        # snapshot the counters to a file
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"decafdrivers/internal/metrics"
	"decafdrivers/internal/trace"
	"decafdrivers/internal/workload"
	"decafdrivers/internal/xpc"
)

// netTransports are the -transport values; only the network drivers have a
// configurable decaf data path, so the flag is rejected elsewhere.
const netTransports = "sync, batch, async, proc"

func main() {
	// A ProcTransport re-execs this binary as its decaf worker process;
	// the hook must run before flag parsing and never returns in worker
	// mode.
	xpc.MaybeRunWorker()

	driver := flag.String("driver", "e1000", "driver: 8139too, e1000, ens1371, uhci-hcd, psmouse")
	modeFlag := flag.String("mode", "decaf", "deployment: native or decaf")
	dur := flag.Duration("dur", 10*time.Second, "virtual workload duration (tar uses -tar bytes instead)")
	tarBytes := flag.Int("tar", 2<<20, "archive bytes for the uhci-hcd tar workload")
	transport := flag.String("transport", "sync", "XPC transport for the network drivers' decaf data path: "+netTransports)
	batch := flag.Int("batch", 16, "calls coalesced per crossing for -transport batch/async/proc")
	queue := flag.Int("queue", 0, "submission-ring depth for -transport async (0 = default)")
	tracePath := flag.String("trace", "", "write the flight-recorder timeline as Chrome trace-event JSON to this path (requires -transport proc; open in Perfetto)")
	metricsAddr := flag.String("metrics", "", "serve the live metrics surface on this address (/metrics Prometheus text, /debug/vars expvar) for the duration of the run")
	metricsOut := flag.String("metrics-out", "", "write a final Prometheus-text counter snapshot to this file (CI mode; no listener needed)")
	flag.Parse()

	var mode xpc.Mode
	switch *modeFlag {
	case "native":
		mode = xpc.ModeNative
	case "decaf":
		mode = xpc.ModeDecaf
	default:
		fmt.Fprintf(os.Stderr, "decafrun: unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	opts := workload.NetOptions{}
	switch *transport {
	case "sync":
	case "batch":
		opts = workload.NetOptions{DataPath: xpc.DataPathDecaf, BatchN: *batch}
	case "async":
		opts = workload.NetOptions{DataPath: xpc.DataPathDecaf, BatchN: *batch, Async: true, QueueDepth: *queue}
	case "proc":
		opts = workload.NetOptions{DataPath: xpc.DataPathDecaf, BatchN: *batch, Proc: true, ZeroCopy: true, Trace: *tracePath != ""}
	default:
		fmt.Fprintf(os.Stderr, "decafrun: unknown transport %q (valid: %s)\n", *transport, netTransports)
		os.Exit(2)
	}
	isNet := *driver == "e1000" || *driver == "8139too"
	if *transport != "sync" && !isNet {
		fmt.Fprintf(os.Stderr, "decafrun: -transport %s requires a network driver (e1000, 8139too)\n", *transport)
		os.Exit(2)
	}
	if *tracePath != "" && *transport != "proc" {
		fmt.Fprintln(os.Stderr, "decafrun: -trace requires -transport proc (the flight recorder's shm rings live in the worker's shared region)")
		os.Exit(2)
	}

	// Boot first, run second: the live metrics endpoint comes up between
	// the two, so a scraper watches the counters move during the workload.
	var (
		tb  *workload.Testbed
		run func() (workload.Result, error)
		res workload.Result
		err error
	)
	switch *driver {
	case "e1000":
		tb, err = workload.NewE1000With(mode, opts)
		run = func() (workload.Result, error) {
			return workload.NetperfSend(tb, tb.E1000.NetDevice(), workload.GigabitMbps, *dur)
		}
	case "8139too":
		tb, err = workload.NewRTL8139With(mode, opts)
		run = func() (workload.Result, error) {
			return workload.NetperfSend(tb, tb.RTL.NetDevice(), workload.FastEtherMbps, *dur)
		}
	case "ens1371":
		tb, err = workload.NewEns1371(mode)
		run = func() (workload.Result, error) { return workload.Mpg123(tb, *dur) }
	case "uhci-hcd":
		tb, err = workload.NewUhci(mode)
		run = func() (workload.Result, error) { return workload.TarToFlash(tb, *tarBytes) }
	case "psmouse":
		tb, err = workload.NewPsmouse(mode)
		run = func() (workload.Result, error) { return workload.MoveAndClick(tb, *dur) }
	default:
		fmt.Fprintf(os.Stderr, "decafrun: unknown driver %q\n", *driver)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "decafrun:", err)
		os.Exit(1)
	}
	defer tb.Shutdown()

	if *metricsAddr != "" {
		bound, closeMetrics, merr := metrics.Serve(*metricsAddr, tb.Runtime.Counters)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "decafrun: -metrics:", merr)
			os.Exit(1)
		}
		defer func() {
			if cerr := closeMetrics(); cerr != nil {
				fmt.Fprintln(os.Stderr, "decafrun: -metrics close:", cerr)
			}
		}()
		fmt.Printf("metrics:         http://%s/metrics (and /debug/vars)\n", bound)
	}

	res, err = run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "decafrun:", err)
		os.Exit(1)
	}

	fmt.Printf("driver:          %s (%s deployment)\n", *driver, mode)
	fmt.Printf("transport:       %s\n", tb.Runtime.Transport().Name())
	fmt.Printf("init latency:    %v (%d user/kernel crossings)\n",
		tb.Load.InitLatency, tb.InitCrossings())
	fmt.Printf("workload:        %s over %v of virtual time\n", res.Workload, res.Elapsed)
	if res.ThroughputMbps > 0 {
		fmt.Printf("throughput:      %.1f Mb/s\n", res.ThroughputMbps)
	}
	fmt.Printf("CPU utilization: %.2f%%\n", res.CPUUtil*100)
	fmt.Printf("workload units:  %d\n", res.Units)
	fmt.Printf("steady-state crossings: %d\n", res.Crossings)
	c := tb.Runtime.Counters()
	fmt.Printf("total crossings: %d upcalls, %d downcalls, %d library calls\n",
		c.Upcalls, c.Downcalls, c.LibraryCalls)
	fmt.Printf("marshaled bytes: %d kernel/user, %d C/Java\n", c.BytesKernelUser, c.BytesCJava)
	if c.SyscallCrossings > 0 || c.RingCrossings > 0 {
		fmt.Printf("wire (worker process): %d syscall crossings, %d B out, %d B in, %d respawns\n",
			c.SyscallCrossings, c.WireBytesOut, c.WireBytesIn, c.WorkerRespawns)
		fmt.Printf("descriptor rings: %d ring crossings, %d doorbell wakeups, peak %d/%d slots\n",
			c.RingCrossings, c.DoorbellWakeups, c.DescRingPeak, c.DescRingEntries)
	}
	if names := c.CallNames(); len(names) > 0 {
		fmt.Println("entry points crossed:")
		for _, n := range names {
			fmt.Printf("  %6d  %s\n", c.PerCall[n], n)
		}
	}
	if c.TraceEvents > 0 || c.TraceDropped > 0 {
		fmt.Printf("flight recorder: %d events, %d dropped\n", c.TraceEvents, c.TraceDropped)
	}
	if *metricsOut != "" {
		if err := metrics.WriteSnapshotFile(*metricsOut, c); err != nil {
			fmt.Fprintln(os.Stderr, "decafrun: -metrics-out:", err)
			os.Exit(1)
		}
		fmt.Printf("counter snapshot: %s\n", *metricsOut)
	}
	if *tracePath != "" && tb.TraceCollector != nil {
		// Stop is idempotent (Shutdown repeats it): the final sweep plus the
		// synthesized GC-pause windows land before the export.
		tb.TraceCollector.Stop()
		if err := trace.WriteChromeFile(*tracePath, tb.TraceCollector.Events(), tb.TraceCollector.Dropped()); err != nil {
			fmt.Fprintln(os.Stderr, "decafrun: -trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace:           %s (open at https://ui.perfetto.dev)\n", *tracePath)
	}
}
