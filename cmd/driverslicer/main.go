// Command driverslicer runs DriverSlicer on one of the modeled legacy
// drivers: it partitions the call graph from the critical roots, reports the
// split, and optionally emits the generated artifacts — stubs (Figure 2),
// the XDR interface specification (Figure 3), Java container classes, and
// the two split source trees (§3.2.1) — into an output directory.
//
// Usage:
//
//	driverslicer -driver e1000
//	driverslicer -driver e1000 -emit out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"decafdrivers/internal/drivermodel"
	"decafdrivers/internal/slicer"
)

func main() {
	driver := flag.String("driver", "e1000", "driver to slice: 8139too, e1000, ens1371, uhci-hcd, psmouse")
	emit := flag.String("emit", "", "directory to write generated stubs, XDR spec, Java classes and split trees")
	flag.Parse()

	models := drivermodel.Drivers()
	d, ok := models[*driver]
	if !ok {
		fmt.Fprintf(os.Stderr, "driverslicer: unknown driver %q\n", *driver)
		os.Exit(2)
	}

	p, err := slicer.Slice(d)
	if err != nil {
		fail(err)
	}
	stats := p.ComputeStats(drivermodel.DecafLoCRatio(*driver))
	fmt.Printf("DriverSlicer: %s (%s, %d lines, %d annotations)\n",
		d.Name, d.Type, d.TotalLoC, stats.Annotations)
	fmt.Printf("  nucleus: %3d functions, %5d LoC\n", stats.Nucleus.Funcs, stats.Nucleus.LoC)
	fmt.Printf("  library: %3d functions, %5d LoC\n", stats.Library.Funcs, stats.Library.LoC)
	fmt.Printf("  decaf:   %3d functions, %5d LoC (from %d original C lines)\n",
		stats.Decaf.Funcs, stats.Decaf.LoC, stats.DecafOrigLoC)
	fmt.Printf("  user entry points:   %d\n", len(p.UserEntryPoints))
	fmt.Printf("  kernel entry points: %d\n", len(p.KernelEntryPoints))
	for fn, reason := range p.Pinned {
		fmt.Printf("  pinned to kernel: %s (%s)\n", fn, reason)
	}

	if *emit == "" {
		return
	}
	sharedStruct := d.Structs[0].Name
	spec, err := slicer.GenerateXDRSpec(d)
	if err != nil {
		fail(err)
	}
	write(*emit, d.Name+".x", spec.Text)
	for _, class := range slicer.GenerateJavaClasses(d) {
		write(*emit, "java/"+class.Name+".java", class.Text)
	}
	for _, stub := range slicer.GenerateStubs(p, sharedStruct) {
		sub := "stubs/kernel"
		if stub.Kind == "jeannie" {
			sub = "stubs/jeannie"
		}
		write(*emit, filepath.Join(sub, stub.Name+".c"), stub.Text)
	}
	tree := slicer.GenerateSplit(p, sharedStruct)
	for path, text := range tree.Nucleus {
		write(*emit, filepath.Join("nucleus", path), text)
	}
	for path, text := range tree.User {
		write(*emit, filepath.Join("user", path), text)
	}
	if v := slicer.CheckSplitInvariants(p, tree); len(v) > 0 {
		fmt.Fprintf(os.Stderr, "driverslicer: split invariant violations: %v\n", v)
		os.Exit(1)
	}
	fmt.Printf("  emitted XDR spec, %d Java classes, stubs and split trees to %s/\n",
		len(d.Structs), *emit)
}

func write(root, rel, text string) {
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "driverslicer:", err)
	os.Exit(1)
}
