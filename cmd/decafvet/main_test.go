package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"decafdrivers/internal/lint"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestJSONRoundTrip pins the -json schema: findings decode into the schema
// struct, carry module-relative paths, and re-encode byte-identically.
func TestJSONRoundTrip(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "internal/lint/testdata/erraudit/drv"}, moduleRoot(t), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (findings); stderr: %s", code, errb.String())
	}
	var got []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("no findings decoded")
	}
	for _, f := range got {
		if f.Analyzer != "erraudit" {
			t.Errorf("analyzer = %q, want erraudit", f.Analyzer)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("file %q should be module-relative", f.File)
		}
		if f.Line <= 0 || f.Col <= 0 || f.Message == "" || f.Function == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	reenc, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(reenc)+"\n" != out.String() {
		t.Error("re-encoded JSON differs from decafvet output")
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"internal/lint/testdata/boundary/good"}, moduleRoot(t), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0; out: %s stderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output: %s", out.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-list"}, moduleRoot(t), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"boundary", "hotpath", "sharedmem", "erraudit"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}
