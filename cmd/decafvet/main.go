// Command decafvet runs the decaf static-checker suite (internal/lint) over
// the module: the boundary, hotpath, sharedmem, and erraudit analyzers that
// enforce at lint time the invariants the runtime gates (the CI alloc gate,
// -race, the bench matrix) can only sample.
//
// Usage:
//
//	decafvet [-json] [-list] [packages...]
//
// Package patterns follow the go tool ("./...", "internal/xpc"); the default
// is "./...". Exit status is 0 when clean, 1 when findings were reported,
// and 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"decafdrivers/internal/lint"
)

// jsonFinding is the stable -json schema, one object per finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Function string `json:"function,omitempty"`
	Message  string `json:"message"`
}

func main() {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "decafvet:", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], dir, os.Stdout, os.Stderr))
}

func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("decafvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "decafvet:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "decafvet:", err)
		return 2
	}
	pkgs, err := mod.Packages(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "decafvet:", err)
		return 2
	}
	findings := lint.Run(pkgs, lint.Analyzers())
	// Report paths relative to the module root so output is stable across
	// checkouts.
	rel := func(path string) string {
		if r, err := filepath.Rel(root, path); err == nil {
			return r
		}
		return path
	}
	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     rel(f.Pos.Filename),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Function: f.Function,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "decafvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", rel(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "decafvet: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
