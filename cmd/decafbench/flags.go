package main

import (
	"fmt"
	"strings"

	"decafdrivers/internal/bench"
)

// validTables and validTransports are the accepted flag values; anything
// else is rejected with a message listing them.
var (
	validTables     = []string{"1", "2", "3", "4", "casestudy", "batch", "async", "zerocopy", "recovery", "contend", "proc", "all"}
	validTransports = []string{"all", "per-call", "sync", "batched", "batch", "async", "proc"}
	jsonTables      = []string{"batch", "async", "zerocopy", "recovery", "contend"}
	// procTables are the tables with process-separated rows: the only ones
	// -transport proc (or async) may select. The proc table is always
	// process-separated, so -transport proc is redundant but accepted there.
	procTables = []string{"async", "zerocopy", "recovery", "contend", "proc"}
)

func oneOf(value string, valid []string) bool {
	for _, v := range valid {
		if value == v {
			return true
		}
	}
	return false
}

// benchFlags is the cross-flag state the CLI validates before running
// anything, extracted from the flag set so the whole matrix is unit-testable
// without exec'ing the binary.
type benchFlags struct {
	Table         string
	Transport     string
	JSON          bool
	RestartPolicy string
	Trace         string
	// Set holds the flag names explicitly provided on the command line
	// (flag.Visit), for rules that reject an explicit flag the selected
	// table would silently ignore.
	Set map[string]bool
}

// validate returns the first rule violation, phrased with the accepted
// values so the fix is in the message. A nil error means the combination
// runs.
func (f benchFlags) validate() error {
	if !oneOf(f.Table, validTables) {
		return fmt.Errorf("unknown table %q (valid: %s)", f.Table, strings.Join(validTables, ", "))
	}
	if !oneOf(f.Transport, validTransports) {
		return fmt.Errorf("unknown transport %q (valid: %s)", f.Transport, strings.Join(validTransports, ", "))
	}
	// Only the async, zerocopy and recovery tables have async or proc rows:
	// reject the combination for any other table (including "all", whose
	// batch table would otherwise render empty) instead of silently
	// selecting nothing.
	if (f.Transport == "async" || f.Transport == "proc") && !oneOf(f.Table, procTables) {
		return fmt.Errorf("-transport %s requires -table %s (-table %s has no %[1]s rows)",
			f.Transport, strings.Join(procTables, ", "), f.Table)
	}
	// The contend table measures synchronous submit-to-completion wall time,
	// which the queue-serviced async transport does not expose.
	if f.Table == "contend" && f.Transport == "async" {
		return fmt.Errorf("-table contend has no async rows (its flushes are submit-to-completion; use -transport proc or batched)")
	}
	// The proc table is the traced process-separated storm: it always runs
	// the proc transport, so only -transport proc (or the default) makes
	// sense there.
	if f.Table == "proc" && f.Transport != "all" && f.Transport != "proc" {
		return fmt.Errorf("-table proc always runs the process-separated transport (drop -transport %s)", f.Transport)
	}
	// The flight-recorder export only exists where the shm trace rings do.
	if f.Set["trace"] && f.Table != "proc" {
		return fmt.Errorf("-trace requires -table proc (got -table %s)", f.Table)
	}
	if f.JSON && !oneOf(f.Table, jsonTables) {
		return fmt.Errorf("-json supports -table %s (got %q)", strings.Join(jsonTables, ", "), f.Table)
	}
	if f.RestartPolicy != "" && !oneOf(f.RestartPolicy, bench.RestartPolicies) {
		return fmt.Errorf("unknown restart policy %q (valid: %s)", f.RestartPolicy, strings.Join(bench.RestartPolicies, ", "))
	}
	// The fault-injection flags shape only the recovery table: reject them
	// elsewhere instead of silently ignoring them.
	for _, name := range []string{"faults", "restart-policy"} {
		if f.Set[name] && f.Table != "recovery" {
			return fmt.Errorf("-%s requires -table recovery (got -table %s)", name, f.Table)
		}
	}
	// Likewise the contention flags shape only the contend and proc storms.
	for _, name := range []string{"submitters", "flushes"} {
		if f.Set[name] && f.Table != "contend" && f.Table != "proc" {
			return fmt.Errorf("-%s requires -table contend or proc (got -table %s)", name, f.Table)
		}
	}
	return nil
}

// transportNote returns the explicit coverage note a run should print, or
// "". "-transport all" never includes the process-separated transport
// (spawning real worker processes must be requested), and before this note
// existed that exclusion was silent: a `-table all` run looked like full
// transport coverage while the proc rows were missing.
func (f benchFlags) transportNote() string {
	if f.Transport != "all" && f.Transport != "" {
		return ""
	}
	covers := false
	for _, t := range procTables {
		if (f.Table == t || f.Table == "all") && f.Table != "proc" {
			covers = true
		}
	}
	if !covers {
		return ""
	}
	return "note: -transport all covers the in-process transports only; add -transport proc\n" +
		"(with -table async, zerocopy, recovery or contend) for the process-separated rows."
}
