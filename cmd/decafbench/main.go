// Command decafbench regenerates the paper's evaluation: Tables 1-4, the
// E1000 case study (§5), and the batched-XPC-transport comparison (§4.2),
// printing measured values next to the published ones.
//
// Usage:
//
//	decafbench -table all
//	decafbench -table 3 -netperf 30s
//	decafbench -table casestudy
//	decafbench -table batch -batch 8,32 -transport all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"decafdrivers/internal/bench"
)

// parseBatchSizes parses the -batch flag ("8,32" -> []int{8, 32}).
func parseBatchSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("batch size %q (want integers >= 2)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	tableFlag := flag.String("table", "all", "which table to regenerate: 1, 2, 3, 4, casestudy, batch, or all")
	root := flag.String("root", ".", "repository root (for Table 1 line counting)")
	netperf := flag.Duration("netperf", 10*time.Second, "virtual duration of each netperf run")
	audio := flag.Duration("audio", 30*time.Second, "virtual duration of the mpg123 run")
	tarBytes := flag.Int("tar", 2<<20, "archive size for the tar workload, bytes")
	mouse := flag.Duration("mouse", 30*time.Second, "virtual duration of the mouse workload")
	transport := flag.String("transport", "all", "transports for the batch table: all, per-call, or batched")
	batch := flag.String("batch", "8,32", "comma-separated batch sizes for the batch table")
	flag.Parse()

	cfg := bench.Table3Config{
		NetperfDuration: *netperf,
		AudioDuration:   *audio,
		TarBytes:        *tarBytes,
		MouseDuration:   *mouse,
	}

	sizes, err := parseBatchSizes(*batch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "decafbench: -batch: %v\n", err)
		os.Exit(2)
	}
	batchCfg := bench.BatchTableConfig{
		NetperfDuration: bench.DefaultBatchTableConfig.NetperfDuration,
		BatchSizes:      sizes,
		Transports:      *transport,
	}
	// The batch table defaults to shorter runs than Table 3 (the per-packet
	// ratios are duration-independent), but an explicit -netperf wins.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "netperf" {
			batchCfg.NetperfDuration = *netperf
		}
	})

	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "decafbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	switch *tableFlag {
	case "1":
		run("table 1", func() error { return bench.PrintTable1(os.Stdout, *root) })
	case "2":
		run("table 2", func() error { return bench.PrintTable2(os.Stdout) })
	case "3":
		run("table 3", func() error { return bench.PrintTable3(os.Stdout, cfg) })
	case "4":
		run("table 4", func() error { return bench.PrintTable4(os.Stdout) })
	case "casestudy":
		run("case study", func() error { return bench.PrintCaseStudy(os.Stdout) })
	case "batch":
		run("batch table", func() error { return bench.PrintBatchTable(os.Stdout, batchCfg) })
	case "all":
		run("table 1", func() error { return bench.PrintTable1(os.Stdout, *root) })
		run("table 2", func() error { return bench.PrintTable2(os.Stdout) })
		run("table 3", func() error { return bench.PrintTable3(os.Stdout, cfg) })
		run("table 4", func() error { return bench.PrintTable4(os.Stdout) })
		run("case study", func() error { return bench.PrintCaseStudy(os.Stdout) })
		run("batch table", func() error { return bench.PrintBatchTable(os.Stdout, batchCfg) })
	default:
		fmt.Fprintf(os.Stderr, "decafbench: unknown table %q\n", *tableFlag)
		os.Exit(2)
	}
}
