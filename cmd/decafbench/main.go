// Command decafbench regenerates the paper's evaluation: Tables 1-4, the
// E1000 case study (§5), the batched-XPC-transport comparison (§4.2), the
// async submit/complete comparison, and the zero-copy payload-ring
// comparison, printing measured values next to the published ones.
//
// Usage:
//
//	decafbench -table all
//	decafbench -table 3 -netperf 30s
//	decafbench -table casestudy
//	decafbench -table batch -batch 8,32 -transport all
//	decafbench -table async -transport async -queue 256 -rate 2.5
//	decafbench -table zerocopy -slots 256
//	decafbench -table zerocopy -json        # machine-readable rows (CI baseline)
//	decafbench -table recovery -faults 40 -restart-policy backoff
//	decafbench -table recovery -transport proc -json   # real process-separated boundary
//	decafbench -table contend -transport proc -submitters 1,2,4,8   # lane-sharded concurrent submission
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"decafdrivers/internal/bench"
	"decafdrivers/internal/xpc"
)

// parseSubmitters parses the -submitters flag ("1,2,4,8" -> []int{1, 2, 4, 8}).
func parseSubmitters(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("submitter count %q (want integers >= 1)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseBatchSizes parses the -batch flag ("8,32" -> []int{8, 32}).
func parseBatchSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("batch size %q (want integers >= 2)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	// A ProcTransport re-execs this binary as its decaf worker process;
	// the hook must run before flag parsing and never returns in worker
	// mode.
	xpc.MaybeRunWorker()

	tableFlag := flag.String("table", "all", "which table to regenerate: "+strings.Join(validTables, ", "))
	root := flag.String("root", ".", "repository root (for Table 1 line counting)")
	netperf := flag.Duration("netperf", 10*time.Second, "virtual duration of each netperf run")
	audio := flag.Duration("audio", 30*time.Second, "virtual duration of the mpg123 run")
	tarBytes := flag.Int("tar", 2<<20, "archive size for the tar workload, bytes")
	mouse := flag.Duration("mouse", 30*time.Second, "virtual duration of the mouse workload")
	transport := flag.String("transport", "all", "transports for the batch/async tables: "+strings.Join(validTransports, ", "))
	batch := flag.String("batch", "8,32", "comma-separated batch sizes for the batch table (the largest also sizes the async table's coalescing)")
	queue := flag.Int("queue", 0, "async submission-ring depth for the async/zerocopy tables (0 = default)")
	rate := flag.Float64("rate", 0, "offered load in Mb/s for the async/zerocopy tables (0 = default)")
	slots := flag.Int("slots", 0, "payload-ring slots for the zerocopy table (0 = default; small values exercise the copy fallback)")
	submitters := flag.String("submitters", "", "contend table: comma-separated concurrent submitter counts (default 1,2,4,8)")
	flushes := flag.Int("flushes", 0, "contend table: total flushes per row, split across its submitters (0 = default)")
	faults := flag.Uint64("faults", 0, "recovery table: inject a decaf-side panic on the Nth data-path upcall (0 = default)")
	restartPolicy := flag.String("restart-policy", "", "recovery table: restart policy, one of "+strings.Join(bench.RestartPolicies, ", "))
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON rows instead of the rendered table ("+strings.Join(jsonTables, ", ")+" only)")
	tracePath := flag.String("trace", "", "proc table: write the flight-recorder timeline as Chrome trace-event JSON to this path (open in Perfetto)")
	flag.Parse()

	flags := benchFlags{
		Table:         *tableFlag,
		Transport:     *transport,
		JSON:          *jsonOut,
		RestartPolicy: *restartPolicy,
		Trace:         *tracePath,
		Set:           map[string]bool{},
	}
	flag.Visit(func(f *flag.Flag) { flags.Set[f.Name] = true })
	if err := flags.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "decafbench: %v\n", err)
		os.Exit(2)
	}
	// The proc transport only runs when asked for: say so instead of letting
	// "-transport all" look like full coverage. The note goes to stderr so
	// -json output stays a clean envelope.
	if note := flags.transportNote(); note != "" {
		fmt.Fprintln(os.Stderr, note)
	}

	cfg := bench.Table3Config{
		NetperfDuration: *netperf,
		AudioDuration:   *audio,
		TarBytes:        *tarBytes,
		MouseDuration:   *mouse,
	}

	sizes, err := parseBatchSizes(*batch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "decafbench: -batch: %v\n", err)
		os.Exit(2)
	}
	batchCfg := bench.BatchTableConfig{
		NetperfDuration: bench.DefaultBatchTableConfig.NetperfDuration,
		BatchSizes:      sizes,
		Transports:      *transport,
	}
	asyncCfg := bench.AsyncTableConfig{
		QueueDepth: *queue,
		OfferedMbps: func() float64 {
			if *rate > 0 {
				return *rate
			}
			return bench.DefaultAsyncTableConfig.OfferedMbps
		}(),
		Transports: *transport,
	}
	for _, n := range sizes {
		if n > asyncCfg.BatchN {
			asyncCfg.BatchN = n
		}
	}
	// The zerocopy table shares the async table's coalescing size (the
	// largest -batch value), so rows at the same flags stay comparable.
	zcCfg := bench.ZeroCopyTableConfig{
		QueueDepth:  *queue,
		OfferedMbps: asyncCfg.OfferedMbps,
		BatchN:      asyncCfg.BatchN,
		RingSlots:   *slots,
		Transports:  *transport,
	}
	ks, err := parseSubmitters(*submitters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "decafbench: -submitters: %v\n", err)
		os.Exit(2)
	}
	// The contend table shares the async/zerocopy coalescing size so its rows
	// stay comparable with theirs at the same flags.
	contendCfg := bench.ContendTableConfig{
		BatchN:     asyncCfg.BatchN,
		Submitters: ks,
		Flushes:    *flushes,
		Transports: *transport,
	}
	// The traced proc storm shares the coalescing size; -submitters narrows
	// to its first value (the storm is one shape, not a sweep).
	procCfg := bench.ProcTraceConfig{
		BatchN:    asyncCfg.BatchN,
		Flushes:   *flushes,
		TracePath: *tracePath,
	}
	if len(ks) > 0 {
		procCfg.Submitters = ks[0]
	}
	recCfg := bench.RecoveryTableConfig{
		QueueDepth:  *queue,
		OfferedMbps: asyncCfg.OfferedMbps,
		BatchN:      asyncCfg.BatchN,
		FaultNth:    *faults,
		Policy:      *restartPolicy,
		Transports:  *transport,
	}
	// The batch table defaults to shorter runs than Table 3 (the per-packet
	// ratios are duration-independent), but an explicit -netperf wins.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "netperf" {
			batchCfg.NetperfDuration = *netperf
			asyncCfg.NetperfDuration = *netperf
			zcCfg.NetperfDuration = *netperf
			recCfg.NetperfDuration = *netperf
		}
	})

	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "decafbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	switch *tableFlag {
	case "1":
		run("table 1", func() error { return bench.PrintTable1(os.Stdout, *root) })
	case "2":
		run("table 2", func() error { return bench.PrintTable2(os.Stdout) })
	case "3":
		run("table 3", func() error { return bench.PrintTable3(os.Stdout, cfg) })
	case "4":
		run("table 4", func() error { return bench.PrintTable4(os.Stdout) })
	case "casestudy":
		run("case study", func() error { return bench.PrintCaseStudy(os.Stdout) })
	case "batch":
		if *jsonOut {
			run("batch table", func() error { return bench.PrintBatchTableJSON(os.Stdout, batchCfg) })
			break
		}
		run("batch table", func() error { return bench.PrintBatchTable(os.Stdout, batchCfg) })
	case "async":
		if *jsonOut {
			run("async table", func() error { return bench.PrintAsyncTableJSON(os.Stdout, asyncCfg) })
			break
		}
		run("async table", func() error { return bench.PrintAsyncTable(os.Stdout, asyncCfg) })
	case "zerocopy":
		if *jsonOut {
			run("zerocopy table", func() error { return bench.PrintZeroCopyTableJSON(os.Stdout, zcCfg) })
			break
		}
		run("zerocopy table", func() error { return bench.PrintZeroCopyTable(os.Stdout, zcCfg) })
	case "recovery":
		if *jsonOut {
			run("recovery table", func() error { return bench.PrintRecoveryTableJSON(os.Stdout, recCfg) })
			break
		}
		run("recovery table", func() error { return bench.PrintRecoveryTable(os.Stdout, recCfg) })
	case "contend":
		if *jsonOut {
			run("contend table", func() error { return bench.PrintContendTableJSON(os.Stdout, contendCfg) })
			break
		}
		run("contend table", func() error { return bench.PrintContendTable(os.Stdout, contendCfg) })
	case "proc":
		run("proc trace", func() error { return bench.PrintProcTrace(os.Stdout, procCfg) })
	case "all":
		run("table 1", func() error { return bench.PrintTable1(os.Stdout, *root) })
		run("table 2", func() error { return bench.PrintTable2(os.Stdout) })
		run("table 3", func() error { return bench.PrintTable3(os.Stdout, cfg) })
		run("table 4", func() error { return bench.PrintTable4(os.Stdout) })
		run("case study", func() error { return bench.PrintCaseStudy(os.Stdout) })
		run("batch table", func() error { return bench.PrintBatchTable(os.Stdout, batchCfg) })
		run("async table", func() error { return bench.PrintAsyncTable(os.Stdout, asyncCfg) })
		run("zerocopy table", func() error { return bench.PrintZeroCopyTable(os.Stdout, zcCfg) })
		run("recovery table", func() error { return bench.PrintRecoveryTable(os.Stdout, recCfg) })
		run("contend table", func() error { return bench.PrintContendTable(os.Stdout, contendCfg) })
	}
}
