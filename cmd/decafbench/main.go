// Command decafbench regenerates the paper's evaluation: Tables 1-4 and the
// E1000 case study (§5), printing measured values next to the published
// ones.
//
// Usage:
//
//	decafbench -table all
//	decafbench -table 3 -netperf 30s
//	decafbench -table casestudy
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"decafdrivers/internal/bench"
)

func main() {
	tableFlag := flag.String("table", "all", "which table to regenerate: 1, 2, 3, 4, casestudy, or all")
	root := flag.String("root", ".", "repository root (for Table 1 line counting)")
	netperf := flag.Duration("netperf", 10*time.Second, "virtual duration of each netperf run")
	audio := flag.Duration("audio", 30*time.Second, "virtual duration of the mpg123 run")
	tarBytes := flag.Int("tar", 2<<20, "archive size for the tar workload, bytes")
	mouse := flag.Duration("mouse", 30*time.Second, "virtual duration of the mouse workload")
	flag.Parse()

	cfg := bench.Table3Config{
		NetperfDuration: *netperf,
		AudioDuration:   *audio,
		TarBytes:        *tarBytes,
		MouseDuration:   *mouse,
	}

	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "decafbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	switch *tableFlag {
	case "1":
		run("table 1", func() error { return bench.PrintTable1(os.Stdout, *root) })
	case "2":
		run("table 2", func() error { return bench.PrintTable2(os.Stdout) })
	case "3":
		run("table 3", func() error { return bench.PrintTable3(os.Stdout, cfg) })
	case "4":
		run("table 4", func() error { return bench.PrintTable4(os.Stdout) })
	case "casestudy":
		run("case study", func() error { return bench.PrintCaseStudy(os.Stdout) })
	case "all":
		run("table 1", func() error { return bench.PrintTable1(os.Stdout, *root) })
		run("table 2", func() error { return bench.PrintTable2(os.Stdout) })
		run("table 3", func() error { return bench.PrintTable3(os.Stdout, cfg) })
		run("table 4", func() error { return bench.PrintTable4(os.Stdout) })
		run("case study", func() error { return bench.PrintCaseStudy(os.Stdout) })
	default:
		fmt.Fprintf(os.Stderr, "decafbench: unknown table %q\n", *tableFlag)
		os.Exit(2)
	}
}
