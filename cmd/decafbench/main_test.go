package main

import (
	"strings"
	"testing"
)

// TestValidateFlagMatrix pins the CLI's cross-flag rules: every accepted
// combination must validate, and every rejection must name the fix.
func TestValidateFlagMatrix(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := map[string]bool{}
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name    string
		f       benchFlags
		wantErr string // substring; "" means valid
	}{
		{"defaults", benchFlags{Table: "all", Transport: "all"}, ""},
		{"unknown table", benchFlags{Table: "5", Transport: "all"}, "unknown table"},
		{"unknown transport", benchFlags{Table: "all", Transport: "uds"}, "unknown transport"},
		{"proc needs proc table", benchFlags{Table: "all", Transport: "proc"}, "requires -table async, zerocopy, recovery"},
		{"proc on batch table", benchFlags{Table: "batch", Transport: "proc"}, "requires -table async, zerocopy, recovery"},
		{"async on table 3", benchFlags{Table: "3", Transport: "async"}, "requires -table async, zerocopy, recovery"},
		{"proc zerocopy", benchFlags{Table: "zerocopy", Transport: "proc"}, ""},
		{"proc async", benchFlags{Table: "async", Transport: "proc"}, ""},
		{"proc recovery", benchFlags{Table: "recovery", Transport: "proc"}, ""},
		{"proc zerocopy json", benchFlags{Table: "zerocopy", Transport: "proc", JSON: true}, ""},
		{"json on table 1", benchFlags{Table: "1", Transport: "all", JSON: true}, "-json supports"},
		{"json on all", benchFlags{Table: "all", Transport: "all", JSON: true}, "-json supports"},
		{"bad restart policy", benchFlags{Table: "recovery", Transport: "all", RestartPolicy: "eventually"}, "unknown restart policy"},
		{"good restart policy", benchFlags{Table: "recovery", Transport: "all", RestartPolicy: "backoff", Set: set("restart-policy")}, ""},
		{"faults off-table", benchFlags{Table: "zerocopy", Transport: "all", Set: set("faults")}, "-faults requires -table recovery"},
		{"restart-policy off-table", benchFlags{Table: "async", Transport: "all", RestartPolicy: "backoff", Set: set("restart-policy")}, "-restart-policy requires -table recovery"},
		{"sync alias", benchFlags{Table: "batch", Transport: "sync"}, ""},
		{"batched zerocopy", benchFlags{Table: "zerocopy", Transport: "batched"}, ""},
	}
	for _, tc := range cases {
		err := tc.f.validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: validate() = %v, want error containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestTransportNote: "-transport all" runs that would silently omit the
// process-separated rows must announce the omission; explicit transports and
// proc-free tables stay quiet.
func TestTransportNote(t *testing.T) {
	noted := []benchFlags{
		{Table: "all", Transport: "all"},
		{Table: "async", Transport: "all"},
		{Table: "zerocopy", Transport: ""},
		{Table: "recovery", Transport: "all"},
	}
	for _, f := range noted {
		note := f.transportNote()
		if !strings.Contains(note, "-transport proc") {
			t.Errorf("table=%q transport=%q: note %q does not point at -transport proc", f.Table, f.Transport, note)
		}
	}
	quiet := []benchFlags{
		{Table: "zerocopy", Transport: "proc"},
		{Table: "async", Transport: "async"},
		{Table: "batch", Transport: "all"},
		{Table: "1", Transport: "all"},
		{Table: "casestudy", Transport: "all"},
	}
	for _, f := range quiet {
		if note := f.transportNote(); note != "" {
			t.Errorf("table=%q transport=%q: unexpected note %q", f.Table, f.Transport, note)
		}
	}
}
