// Evolution: the §5.2 experiment — apply the 320 upstream patches that took
// the E1000 from 2.6.18.1 to 2.6.27 against the sliced driver, classify
// every changed line, and regenerate marshaling code between batches.
//
// Run: go run ./examples/evolution
package main

import (
	"fmt"
	"log"

	"decafdrivers/internal/drivermodel"
	"decafdrivers/internal/evolution"
	"decafdrivers/internal/slicer"
)

func main() {
	d := drivermodel.E1000()
	patches := drivermodel.E1000Patches(d)
	fmt.Printf("applying %d patches (2.6.18.1 -> 2.6.27) to the sliced e1000...\n\n", len(patches))

	rep, err := evolution.Apply(d, patches)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lines changed by component (Table 4):")
	fmt.Printf("  driver nucleus:        %5d   (paper: 381)\n", rep.NucleusLines)
	fmt.Printf("  decaf driver:          %5d   (paper: 4690)\n", rep.DecafLines)
	fmt.Printf("  user/kernel interface: %5d   (paper: 23)\n", rep.InterfaceLines)
	fmt.Println()
	for _, b := range rep.Batches {
		fmt.Printf("batch %d: %3d patches; regenerated %d stubs; marshaling spec gained %d fields\n",
			b.Batch, b.Patches, b.StubsRegenerated, len(b.AddedMarshalFields))
	}

	// The regenerated specification covers every evolved field.
	p, err := slicer.Slice(d)
	if err != nil {
		log.Fatal(err)
	}
	spec := slicer.BuildMarshalSpec(p)
	fmt.Printf("\nafter evolution, e1000_adapter marshals %d fields (was 8 before the stream)\n",
		len(spec.Fields["e1000_adapter"]))
	fmt.Printf("vast majority of development happened at user level in the managed language —\n")
	fmt.Printf("decaf share of changed lines: %.1f%%\n",
		100*float64(rep.DecafLines)/float64(rep.DecafLines+rep.NucleusLines+rep.InterfaceLines))
}
