// Soundcard: the ens1371 driver playing audio — the paper's cleanest split
// (no driver library at all). Playback start and end cross to the decaf
// driver (§4.2 counted 15 such calls); the period interrupts and sample
// copies stay in the kernel.
//
// Run: go run ./examples/soundcard
package main

import (
	"fmt"
	"log"
	"time"

	"decafdrivers/internal/workload"
	"decafdrivers/internal/xpc"
)

func main() {
	tb, err := workload.NewEns1371(xpc.ModeDecaf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("insmod ens1371 (decaf): %v, %d crossings\n", tb.Load.InitLatency, tb.InitCrossings())
	fmt.Printf("AC'97 codec vendor: %#x; SRC RAM initialized; %d mixer controls\n\n",
		tb.Ens.Chip.CodecVendor, tb.Ens.Chip.MixerCtls)

	before := tb.Runtime.Counters().Trips()
	res, err := workload.Mpg123(tb, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("played 30s of 44.1kHz stereo PCM: %d periods, CPU %.2f%%\n",
		res.Units, res.CPUUtil*100)
	fmt.Printf("decaf-driver calls during playback: %d, all at start and end (paper: 15)\n",
		tb.Runtime.Counters().Trips()-before)

	c := tb.Runtime.Counters()
	fmt.Println("\nentry points crossed during the session:")
	for _, n := range c.CallNames() {
		fmt.Printf("  %5d  %s\n", c.PerCall[n], n)
	}
}
