// Netperf: the paper's headline performance claim (§4.2) on the E1000 —
// steady-state decaf throughput within one percent of the native driver,
// because the data path never leaves the kernel and only the two-second
// watchdog crosses to user level.
//
// Run: go run ./examples/netperf
package main

import (
	"fmt"
	"log"
	"time"

	"decafdrivers/internal/workload"
	"decafdrivers/internal/xpc"
)

func main() {
	const dur = 10 * time.Second

	type outcome struct {
		mode xpc.Mode
		send workload.Result
		init time.Duration
		x    uint64
	}
	var outcomes []outcome
	for _, mode := range []xpc.Mode{xpc.ModeNative, xpc.ModeDecaf} {
		tb, err := workload.NewE1000(mode)
		if err != nil {
			log.Fatal(err)
		}
		res, err := workload.NetperfSend(tb, tb.E1000.NetDevice(), workload.GigabitMbps, dur)
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{mode, res, tb.Load.InitLatency, tb.InitCrossings()})
	}

	fmt.Printf("netperf-send, E1000, %v of virtual time per run\n\n", dur)
	fmt.Printf("%-8s  %12s  %8s  %12s  %s\n", "mode", "throughput", "CPU", "init", "init crossings")
	for _, o := range outcomes {
		fmt.Printf("%-8s  %9.1f Mb/s  %6.2f%%  %12v  %d\n",
			o.mode, o.send.ThroughputMbps, o.send.CPUUtil*100, o.init, o.x)
	}
	rel := outcomes[1].send.ThroughputMbps / outcomes[0].send.ThroughputMbps
	fmt.Printf("\nrelative performance (decaf/native): %.3f   (paper: 0.99)\n", rel)
	fmt.Printf("decaf steady-state crossings: %d (the watchdog, every 2s)\n",
		outcomes[1].send.Crossings)
}
