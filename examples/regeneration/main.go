// Regeneration: the §3.2.4 tooling, including the two improvements the
// paper lists as future work and this reproduction implements —
//
//  1. automatic inference of DECAF_XVAR marshaling annotations from the
//     decaf driver's own field accesses ("we plan to automatically analyze
//     the decaf driver source code to detect and marshal these fields"), and
//  2. a concise entry-point specification from which stubs and marshaling
//     code regenerate without the original driver source ("we plan to
//     produce a concise specification of the entry points").
//
// Run: go run ./examples/regeneration
package main

import (
	"fmt"
	"log"
	"strings"

	"decafdrivers/internal/drivermodel"
	"decafdrivers/internal/slicer"
)

func main() {
	d := drivermodel.E1000()
	p, err := slicer.Slice(d)
	if err != nil {
		log.Fatal(err)
	}

	// -- 1: wipe the hand annotations and infer them back --
	hand := 0
	for _, s := range d.Structs {
		for i := range s.Fields {
			if s.Fields[i].DecafAccess != "" {
				hand++
				s.Fields[i].DecafAccess = ""
			}
		}
	}
	inferred, err := slicer.InferAnnotations(d, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hand-written DECAF_XVAR annotations removed: %d\n", hand)
	fmt.Printf("annotations inferred from decaf-driver field accesses: %d\n\n", inferred)

	// -- 2: capture the concise spec, 'lose' the source, regenerate --
	mspec := slicer.BuildMarshalSpec(p)
	spec := slicer.BuildEntryPointSpec(p, mspec, "e1000_adapter")
	text := spec.Render()
	fmt.Printf("entry-point specification (%d lines):\n", strings.Count(text, "\n"))
	for _, line := range strings.SplitN(text, "\n", 7)[:6] {
		fmt.Println("  " + line)
	}
	fmt.Println("  ...")

	back, err := slicer.ParseEntryPointSpec(text)
	if err != nil {
		log.Fatal(err)
	}
	stubs := back.GenerateStubs()
	jeannie := 0
	for _, s := range stubs {
		if s.Kind == "jeannie" && slicer.StubHasFigure2Shape(s) {
			jeannie++
		}
	}
	fmt.Printf("\nregenerated %d stubs from the spec alone (%d Jeannie stubs pass the Figure 2 shape check)\n",
		len(stubs), jeannie)
	fmt.Printf("marshaling spec from the spec file covers e1000_adapter fields: %v\n",
		back.MarshalSpec().Fields["e1000_adapter"])
}
