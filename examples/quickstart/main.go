// Quickstart: the Decaf Drivers pipeline end to end on one driver.
//
//  1. DriverSlicer partitions the legacy E1000 driver from its critical
//     roots (§2.4) and generates the XDR spec and stubs.
//  2. A simulated machine boots, the split driver loads in decaf
//     deployment, and the interface comes up — initialization crossing the
//     kernel/user and C/Java boundaries through XPC.
//  3. One packet travels the kernel-resident data path.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"decafdrivers/internal/drivermodel"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/slicer"
	"decafdrivers/internal/workload"
	"decafdrivers/internal/xpc"
)

func main() {
	// --- step 1: slice the legacy driver ---
	model := drivermodel.E1000()
	part, err := slicer.Slice(model)
	if err != nil {
		log.Fatal(err)
	}
	stats := part.ComputeStats(drivermodel.DecafLoCRatio("e1000"))
	fmt.Println("== DriverSlicer ==")
	fmt.Printf("e1000: %d functions stay in the kernel, %d move to the decaf driver\n",
		stats.Nucleus.Funcs, stats.Decaf.Funcs)
	spec, err := slicer.GenerateXDRSpec(model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XDR spec generated: %d structs, wrappers %v (Figure 3)\n",
		len(spec.Structs), spec.WrapperStructs)
	mspec := slicer.BuildMarshalSpec(part)
	fmt.Printf("marshaling specification: e1000_adapter transfers fields %v\n\n",
		mspec.Fields["e1000_adapter"])

	// --- step 2: boot and load the split driver ---
	fmt.Println("== Runtime ==")
	tb, err := workload.NewE1000(xpc.ModeDecaf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("insmod e1000 (decaf): %v, %d user/kernel crossings\n",
		tb.Load.InitLatency, tb.InitCrossings())
	fmt.Printf("MAC from EEPROM via the decaf driver: %x\n", tb.E1000.Adapter.MAC)

	// --- step 3: the data path stays in the kernel ---
	before := tb.Runtime.Counters().Trips()
	ctx := tb.Kernel.NewContext("quickstart")
	nd := tb.E1000.NetDevice()
	pkt := knet.NewPacket([6]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, nd.MAC, 0x0800, 256)
	if err := nd.Transmit(ctx, pkt); err != nil {
		log.Fatal(err)
	}
	tx, txBytes, _, _, _ := tb.E1000Dev.Counters()
	fmt.Printf("transmitted %d frame (%d bytes) through the nucleus; crossings during send: %d\n",
		tx, txBytes, tb.Runtime.Counters().Trips()-before)
}
