package decafdrivers

// Repository-level benchmarks: one per table and figure in the paper's
// evaluation (see DESIGN.md's experiment index), plus microbenchmarks of
// the Decaf substrate and the ablations of DESIGN.md §5 (D1-D5).
//
// The table benchmarks report the paper's metrics as custom units via
// b.ReportMetric (virtual time, crossings, relative performance); wall-clock
// ns/op measures the simulation itself.

import (
	"testing"
	"time"

	"decafdrivers/internal/analysis"
	"decafdrivers/internal/bench"
	"decafdrivers/internal/drivermodel"
	"decafdrivers/internal/evolution"
	"decafdrivers/internal/hw"
	"decafdrivers/internal/kernel"
	"decafdrivers/internal/knet"
	"decafdrivers/internal/ktime"
	"decafdrivers/internal/objtrack"
	"decafdrivers/internal/slicer"
	"decafdrivers/internal/workload"
	"decafdrivers/internal/xdr"
	"decafdrivers/internal/xpc"
)

// --- Table 1: implementation size ---

func BenchmarkTable1CodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable1(".")
		if err != nil {
			b.Skip("source tree unavailable:", err)
		}
		total := 0
		for _, r := range rows {
			total += r.Lines
		}
		b.ReportMetric(float64(total), "loc")
	}
}

// --- Table 2: slicing the five drivers ---

func BenchmarkTable2Slicing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("expected five drivers")
		}
	}
}

// --- Table 3: one benchmark per workload row ---

func table3Net(b *testing.B, boot func(xpc.Mode) (*workload.Testbed, error),
	nd func(*workload.Testbed) *knet.NetDevice, mbps float64, send bool,
	inject func(*workload.Testbed) func([]byte) bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		native, err := boot(xpc.ModeNative)
		if err != nil {
			b.Fatal(err)
		}
		decaf, err := boot(xpc.ModeDecaf)
		if err != nil {
			b.Fatal(err)
		}
		run := func(tb *workload.Testbed) workload.Result {
			var r workload.Result
			var err error
			if send {
				r, err = workload.NetperfSend(tb, nd(tb), mbps, 5*time.Second)
			} else {
				r, err = workload.NetperfRecv(tb, inject(tb), nd(tb), mbps, 5*time.Second)
			}
			if err != nil {
				b.Fatal(err)
			}
			return r
		}
		rn, rd := run(native), run(decaf)
		b.ReportMetric(rd.ThroughputMbps/rn.ThroughputMbps, "rel-perf")
		b.ReportMetric(rd.CPUUtil*100, "decaf-cpu-%")
		b.ReportMetric(float64(decaf.Load.InitLatency.Milliseconds()), "init-ms")
		b.ReportMetric(float64(decaf.InitCrossings()), "init-crossings")
	}
}

func BenchmarkTable3NetperfSend8139too(b *testing.B) {
	table3Net(b, workload.NewRTL8139,
		func(tb *workload.Testbed) *knet.NetDevice { return tb.RTL.NetDevice() },
		workload.FastEtherMbps, true, nil)
}

func BenchmarkTable3NetperfRecv8139too(b *testing.B) {
	table3Net(b, workload.NewRTL8139,
		func(tb *workload.Testbed) *knet.NetDevice { return tb.RTL.NetDevice() },
		workload.FastEtherMbps, false,
		func(tb *workload.Testbed) func([]byte) bool { return tb.RTLDev.InjectRx })
}

func BenchmarkTable3NetperfSendE1000(b *testing.B) {
	table3Net(b, workload.NewE1000,
		func(tb *workload.Testbed) *knet.NetDevice { return tb.E1000.NetDevice() },
		workload.GigabitMbps, true, nil)
}

func BenchmarkTable3NetperfRecvE1000(b *testing.B) {
	table3Net(b, workload.NewE1000,
		func(tb *workload.Testbed) *knet.NetDevice { return tb.E1000.NetDevice() },
		workload.GigabitMbps, false,
		func(tb *workload.Testbed) func([]byte) bool { return tb.E1000Dev.InjectRx })
}

func BenchmarkTable3Mpg123Ens1371(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := workload.NewEns1371(xpc.ModeDecaf)
		if err != nil {
			b.Fatal(err)
		}
		res, err := workload.Mpg123(tb, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CPUUtil*100, "decaf-cpu-%")
		b.ReportMetric(float64(res.Crossings), "playback-crossings")
		b.ReportMetric(float64(tb.Load.InitLatency.Milliseconds()), "init-ms")
		b.ReportMetric(float64(tb.InitCrossings()), "init-crossings")
	}
}

func BenchmarkTable3TarUhci(b *testing.B) {
	for i := 0; i < b.N; i++ {
		native, err := workload.NewUhci(xpc.ModeNative)
		if err != nil {
			b.Fatal(err)
		}
		decaf, err := workload.NewUhci(xpc.ModeDecaf)
		if err != nil {
			b.Fatal(err)
		}
		rn, err := workload.TarToFlash(native, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		rd, err := workload.TarToFlash(decaf, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rd.ThroughputMbps/rn.ThroughputMbps, "rel-perf")
		b.ReportMetric(float64(decaf.Load.InitLatency.Milliseconds()), "init-ms")
		b.ReportMetric(float64(decaf.InitCrossings()), "init-crossings")
	}
}

func BenchmarkTable3MousePsmouse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := workload.NewPsmouse(xpc.ModeDecaf)
		if err != nil {
			b.Fatal(err)
		}
		res, err := workload.MoveAndClick(tb, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CPUUtil*100, "decaf-cpu-%")
		b.ReportMetric(float64(tb.Load.InitLatency.Milliseconds()), "init-ms")
		b.ReportMetric(float64(tb.InitCrossings()), "init-crossings")
	}
}

// --- Table 4: evolution ---

func BenchmarkTable4Evolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := drivermodel.E1000()
		rep, err := evolution.Apply(d, drivermodel.E1000Patches(d))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.DecafLines), "decaf-lines")
		b.ReportMetric(float64(rep.NucleusLines), "nucleus-lines")
		b.ReportMetric(float64(rep.InterfaceLines), "interface-lines")
	}
}

// --- Case study (§5.1, Figures 4 and 5) ---

func BenchmarkCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := drivermodel.E1000()
		a := analysis.AuditErrorHandling(d)
		b.ReportMetric(float64(len(a.Defects)), "defects")
		b.ReportMetric(float64(a.LinesRemoved), "lines-removed")
		b.ReportMetric(float64(a.FunctionsConverted), "fns-converted")
	}
}

// --- Figure 2 / Figure 3 generators ---

func BenchmarkFig2StubGeneration(b *testing.B) {
	d := drivermodel.E1000()
	p, err := slicer.Slice(d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stubs := slicer.GenerateStubs(p, "e1000_adapter")
		if len(stubs) == 0 {
			b.Fatal("no stubs")
		}
	}
}

func BenchmarkFig3XDRSpecGeneration(b *testing.B) {
	d := drivermodel.E1000()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec, err := slicer.GenerateXDRSpec(d)
		if err != nil {
			b.Fatal(err)
		}
		if len(spec.WrapperStructs) == 0 {
			b.Fatal("Figure 3 wrapper missing")
		}
	}
}

// --- substrate microbenchmarks ---

type benchRing struct {
	Count uint32
	Head  uint32
}

type benchAdapter struct {
	Name        string
	MsgEnable   int32
	LinkUp      bool
	MAC         [6]byte
	EEPROM      [64]uint16
	ConfigSpace [64]uint32
	Tx          benchRing
	Rx          *benchRing
}

func benchAdapterValue() *benchAdapter {
	return &benchAdapter{Name: "eth0", MsgEnable: 3, LinkUp: true, Rx: &benchRing{Count: 256}}
}

func BenchmarkXDRMarshalAdapter(b *testing.B) {
	c := &xdr.Codec{}
	a := benchAdapterValue()
	data, err := c.Marshal(a)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Marshal(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXDRUnmarshalAdapter(b *testing.B) {
	c := &xdr.Codec{}
	a := benchAdapterValue()
	data, err := c.Marshal(a)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	out := benchAdapterValue()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Unmarshal(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func newBenchKernel() *kernel.Kernel {
	clock := ktime.NewClock()
	return kernel.New(clock, hw.NewBus(clock, 1<<20))
}

func BenchmarkXPCUpcallRoundTrip(b *testing.B) {
	k := newBenchKernel()
	rt := xpc.NewRuntime(k, "bench", xpc.ModeDecaf, nil)
	ka, da := benchAdapterValue(), benchAdapterValue()
	if _, err := rt.Share(ka, da); err != nil {
		b.Fatal(err)
	}
	ctx := k.NewContext("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Upcall(ctx, "bench", func(uctx *kernel.Context) error { return nil }, ka); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ctx.Elapsed().Nanoseconds())/float64(b.N), "virtual-ns/op")
}

func BenchmarkObjectTracker(b *testing.B) {
	tr := objtrack.NewTracker("bench")
	objs := make([]*benchRing, 1024)
	for i := range objs {
		objs[i] = &benchRing{Count: uint32(i)}
		if err := tr.Associate(objtrack.CPtr(0x1000+64*i), "benchRing", objs[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr := objtrack.CPtr(0x1000 + 64*(i%1024))
		if _, ok := tr.LookupUser(ptr, "benchRing"); !ok {
			b.Fatal("lookup miss")
		}
		if _, _, ok := tr.LookupC(objs[i%1024]); !ok {
			b.Fatal("reverse miss")
		}
	}
}

// --- ablations (DESIGN.md D1-D3 and the paper's §4.2 proposal) ---

// BenchmarkAblationDataPathKernel vs ...DataPathUser: D1 — the cost of one
// packet-send if the data path were moved to user level. The virtual-time
// metric shows the collapse: a kernel send costs nanoseconds of virtual
// time; an upcall per packet costs tens of milliseconds.
func BenchmarkAblationDataPathKernel(b *testing.B) {
	tb, err := workload.NewE1000(xpc.ModeDecaf)
	if err != nil {
		b.Fatal(err)
	}
	ctx := tb.Kernel.NewContext("bench")
	nd := tb.E1000.NetDevice()
	pkt := knet.NewPacket([6]byte{1}, nd.MAC, 0x0800, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nd.Transmit(ctx, pkt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ctx.Elapsed().Nanoseconds())/float64(b.N), "virtual-ns/op")
}

func BenchmarkAblationDataPathUser(b *testing.B) {
	tb, err := workload.NewE1000(xpc.ModeDecaf)
	if err != nil {
		b.Fatal(err)
	}
	ctx := tb.Kernel.NewContext("bench")
	nd := tb.E1000.NetDevice()
	pkt := knet.NewPacket([6]byte{1}, nd.MAC, 0x0800, 1000)
	rt := tb.Runtime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Force the transmit through an upcall, as if xmit lived in the
		// decaf driver.
		err := rt.Upcall(ctx, "xmit-in-user", func(uctx *kernel.Context) error {
			return nd.Transmit(uctx, pkt)
		}, tb.E1000.Adapter)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ctx.Elapsed().Nanoseconds())/float64(b.N), "virtual-ns/op")
}

// BenchmarkAblationMaskedMarshal vs FullMarshal: D2 — field-level
// marshaling against whole-structure marshaling.
func BenchmarkAblationMaskedMarshal(b *testing.B) {
	benchMarshalAblation(b, false)
}

func BenchmarkAblationFullMarshal(b *testing.B) {
	benchMarshalAblation(b, true)
}

func benchMarshalAblation(b *testing.B, full bool) {
	b.Helper()
	k := newBenchKernel()
	mask := xdr.FieldMask{"benchAdapter": {"MsgEnable": true, "LinkUp": true, "Name": true}}
	rt := xpc.NewRuntime(k, "bench", xpc.ModeDecaf, mask)
	rt.UseFullMarshal = full
	ka, da := benchAdapterValue(), benchAdapterValue()
	if _, err := rt.Share(ka, da); err != nil {
		b.Fatal(err)
	}
	ctx := k.NewContext("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.SyncToUser(ctx, ka); err != nil {
			b.Fatal(err)
		}
	}
	c := rt.Counters()
	b.ReportMetric(float64(c.BytesKernelUser)/float64(b.N), "bytes/op")
}

// BenchmarkAblationStagedTransfer vs DirectTransfer: the §4.2 proposal —
// "optimizing our marshaling interface to transfer data directly between
// the driver nucleus and the decaf driver, rather than unmarshaling at
// user-level in C and re-marshaling in Java".
func BenchmarkAblationStagedTransfer(b *testing.B) {
	benchTransferAblation(b, false)
}

func BenchmarkAblationDirectTransfer(b *testing.B) {
	benchTransferAblation(b, true)
}

func benchTransferAblation(b *testing.B, direct bool) {
	b.Helper()
	k := newBenchKernel()
	rt := xpc.NewRuntime(k, "bench", xpc.ModeDecaf, nil)
	rt.DirectTransfer = direct
	ka, da := benchAdapterValue(), benchAdapterValue()
	if _, err := rt.Share(ka, da); err != nil {
		b.Fatal(err)
	}
	ctx := k.NewContext("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.SyncToUser(ctx, ka); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCombolock vs AlwaysSemaphore: D3 — the combolock's spin
// path against a plain semaphore under kernel-only, uncontended use.
func BenchmarkAblationCombolock(b *testing.B) {
	k := newBenchKernel()
	ctx := k.NewContext("bench")
	l := kernel.NewCombolock("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lock(ctx)
		l.Unlock(ctx)
	}
	b.ReportMetric(float64(ctx.Busy().Nanoseconds())/float64(b.N), "virtual-ns/op")
}

func BenchmarkAblationAlwaysSemaphore(b *testing.B) {
	k := newBenchKernel()
	ctx := k.NewContext("bench")
	s := kernel.NewSemaphore("bench", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Down(ctx)
		s.Up(ctx)
	}
	b.ReportMetric(float64(ctx.Busy().Nanoseconds())/float64(b.N), "virtual-ns/op")
}
