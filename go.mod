module decafdrivers

go 1.24
