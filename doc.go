// Package decafdrivers is a reproduction of "Decaf: Moving Device Drivers
// to a Modern Language" (Renzelmann & Swift, USENIX ATC 2009) as a Go
// library: the XPC communication substrate, the DriverSlicer tool, a
// simulated Linux-like kernel and register-level device models, the five
// converted drivers, and a benchmark harness regenerating every table in
// the paper's evaluation.
//
// Beyond the paper's measured configuration, the crossing layer implements
// the three §4.2 optimizations end to end: batched crossings
// (xpc.BatchTransport), asynchronous submit/complete crossings
// (xpc.AsyncTransport), and zero-copy payloads (xpc.PayloadRing — frames
// live in a pool of buffers registered once with the transport, and
// data-carrying calls cross a twelve-byte slot descriptor instead of
// marshaling payload bytes, falling back to the copy path on exhaustion).
// The decafbench batch, async and zerocopy tables quantify each step.
//
// The transports differ in crossings, copies and isolation:
//
//	sync   1 crossing per call, inline; contained panic (recover)
//	batch  1 crossing per ≤N calls, inline; fault aborts the flush
//	async  1 crossing per ≤N calls on the decaf goroutine's timeline;
//	       a fault fails only its own completion
//	proc   1 crossing per ≤N calls into a forked worker process
//	       (xpc.ProcTransport): steady state rides SPSC shared-memory
//	       descriptor rings — frames encoded in place in the mmap
//	       mapping, published with one atomic store, zero syscalls and
//	       zero allocations per crossing — with a park/doorbell wakeup
//	       protocol and the socketpair demoted to control frames and
//	       oversized-payload fallback; payload rings are mmap-shared
//	       memory the worker checksums through its own mapping, and
//	       fault containment is physical — a decaf panic SIGKILLs the
//	       worker and recovery respawns a process that actually died
//
// Decaf call bodies live in a process-global handler table
// (internal/decaf/registry) dispatched by name: under the proc transport
// the body executes in the worker's address space (the worker re-execs the
// same binary, so init() builds the identical table), with shared driver
// state in shm-backed cells and nested downcalls crossing back for real;
// the in-process transports dispatch the same bodies inline. The declared
// per-call cost is charged kernel-side either way, so the virtual cost
// model is identical to batch and crossings per packet
// are comparable across all four while Counters.RingCrossings,
// DoorbellWakeups, SyscallCrossings and WireBytesOut/In meter the real
// boundary: descriptor-ring traffic, doorbell syscalls, and socketpair
// control/fallback trips. decafbench's async and zerocopy rows add
// caller-visible p50/p99/p999 completion latency and GC pause/cycle
// columns, banded in CI against the committed BENCH_*.json baselines.
//
// On top of fault containment, internal/recovery adds a shadow-driver-style
// recovery subsystem: a Supervisor consumes the runtime's fault
// notifications, quiesces the crashed driver, rebuilds its decaf-side state
// (fresh shared objects, a re-registered payload ring), and replays a
// StateJournal of configuration-establishing crossings under a restart
// policy (immediate, exponential backoff, fail-stop on an exhausted
// budget). During recovery the kernel-facing surface makes the device look
// slow, not dead: knet.NetDevice holds and replays transmit frames with
// explicit accounting, and the sound driver's PCM ops journal their intent
// and defer. Journaling is kernel-side bookkeeping, so steady-state
// crossings per packet are unchanged until a fault actually fires; the
// decafbench recovery table verifies exactly that, next to recovery latency
// and the dropped-versus-replayed split.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and substitution notes, and EXPERIMENTS.md for paper-vs-measured
// results. The root package exists to host the repository-level benchmarks
// in bench_test.go; the implementation lives under internal/.
package decafdrivers
