#!/usr/bin/env python3
"""Machine-readable perf gate over decafbench -json output.

Usage:
    decafbench -table zerocopy -json | scripts/check_bench.py zerocopy
    decafbench -table recovery -transport proc -json | scripts/check_bench.py recovery bench.json
    decafbench -table contend -transport proc -json | scripts/check_bench.py contend
    decafbench -table proc -trace trace.json && scripts/check_bench.py trace trace.json
    scripts/check_bench.py zerocopy bench.json --baseline BENCH_proc.json
    scripts/check_bench.py --self-test

The checks are the CI acceptance bar for the zero-copy payload ring, the
descriptor-ring proc transport, the lane-sharded concurrent submission path
and the shadow-driver recovery subsystem, across every transport.
Process-separated rows must prove a real boundary: chunks crossing on the
shared-memory descriptor rings (RingCrossings), decaf call bodies actually
executed by the worker's handler table (WorkerServedCalls > 0 on proc rows,
exactly 0 in-process — worker-side execution must be live, not simulated),
a doorbell that stays quiet in steady state, and — for recovery — a worker
process that died and was respawned. Every row must carry the latency
percentiles and GC columns the perf trajectory is built on.

The contend table is wall-clock (real concurrency has no virtual
timeline), so its gate is structural within one run: proc throughput at
K=8 submitters must reach 3x the K=1 row, the contended p99 must stay
within 2x the uncontended p99, the lane submit path must allocate nothing,
and the control mutex must not be touched during the storm.

With --baseline, rows are additionally compared against a committed
BENCH_*.json reference within a relative tolerance band. Only deterministic
metrics are banded — which metrics those are depends on the table;
wall-clock facts (GC activity, doorbell counts, syscalls, contended
latencies) are asserted structurally but never compared across machines.

Keeping the gate in a checked-in executable script (rather than inline YAML)
makes it runnable locally, diffable in review, and self-testable against the
fixtures in scripts/testdata.
"""

import copy
import json
import os
import sys

# Steady state must be doorbell-free to the first order: the consumer spins
# briefly before parking, so at a sustainable offered load most chunks are
# consumed without a wakeup. The bound is deliberately loose — it catches a
# transport that degenerated to one syscall per packet, not scheduler jitter.
DOORBELL_RATIO_MAX = 0.5

# The contend gate, per ISSUE 8: K=8 proc throughput >= 3x K=1, contended
# p99 within 2x uncontended, zero allocations and zero control-mutex
# acquisitions on the storm's submit path. The p99 denominator is clamped at
# a small floor: an uncontended tail below 10us is within one scheduler
# quantum, where a 2x band would gate on noise.
CONTEND_GATE_K = 8
CONTEND_SCALING_MIN = 3.0
CONTEND_P99_RATIO_MAX = 2.0
CONTEND_P99_FLOOR_US = 10.0

# Metrics banded against the committed baseline, per table. The virtual-time
# tables are deterministic for fixed flags, so their band is tight and wide.
# The contend table is wall-clock: only its work count is deterministic.
# Keys absent from a table's rows are ignored.
BANDED_METRICS = {
    "zerocopy": [
        "ThroughputMbps", "Packets", "XPerPacket",
        "CopiedBPerPkt", "DirectBPerPkt",
        "P50Us", "P99Us", "P999Us",
        "RingCrossings", "WorkerServedCalls",
    ],
    "recovery": [
        "ThroughputMbps", "Packets", "XPerPacket",
        "CopiedBPerPkt", "DirectBPerPkt",
        "P50Us", "P99Us", "P999Us",
        "RingCrossings", "WorkerServedCalls",
    ],
    "contend": ["Ops", "BatchN", "Lanes"],
}
DEFAULT_TOLERANCE = 0.10

GC_FIELDS = ("GCCycles", "GCPauseTotalMs", "GCPauseMaxMs")


def is_proc(row):
    """Rows from the process-separated transport ("proc(bN)")."""
    return row["Transport"].startswith("proc")


def row_key(table, row):
    """The identity a row keeps across runs, for baseline matching."""
    if table == "contend":
        return (row["Transport"], row["Submitters"])
    key = (row["Driver"], row["Workload"], row["Transport"])
    if table == "zerocopy":
        key += (row["Payload"],)
    if table == "recovery":
        key += (row["Scenario"],)
    return key


def check_latency_and_gc(row, ctx):
    """Percentile and GC columns every measured row must carry."""
    for k in ("P50Us", "P99Us", "P999Us") + GC_FIELDS:
        assert k in row, f"{ctx}: missing column {k}: {row}"
    if row["Packets"] > 0:
        assert 0 < row["P50Us"] <= row["P99Us"] <= row["P999Us"], \
            f"{ctx}: latency percentiles not positive and monotone: {row}"
    assert row["GCCycles"] >= 0, f"{ctx}: negative GC cycles: {row}"
    assert row["GCPauseTotalMs"] >= row["GCPauseMaxMs"] >= 0, \
        f"{ctx}: GC pause total below max: {row}"


def check_proc_rings(row, ctx):
    """A proc row must prove the descriptor-ring boundary is real and quiet.

    Steady state rides the shared-memory rings: chunks cross as ring
    descriptors (RingCrossings > 0 — a proc leg that silently ran
    in-process cannot pass) and the doorbell fires far less than once per
    packet. WireBytes is a phase delta and is expected to be ~0: the
    socketpair's control traffic (handshake, ring registration) happens at
    boot, outside the measured window.
    """
    assert row["RingCrossings"] > 0, f"{ctx}: proc row crossed nothing on the rings: {row}"
    assert row["WorkerServedCalls"] > 0, \
        f"{ctx}: proc row served no call bodies in the worker — execution fell back in-process: {row}"
    if row["Packets"] > 0:
        ratio = row["DoorbellWakeups"] / row["Packets"]
        assert ratio < DOORBELL_RATIO_MAX, \
            f"{ctx}: doorbell fired {ratio:.3f} times per packet (bound {DOORBELL_RATIO_MAX}): {row}"
        sys_ratio = row["SyscallCrossings"] / row["Packets"]
        assert sys_ratio < 1.0, \
            f"{ctx}: {sys_ratio:.3f} syscalls per packet — steady state left the rings: {row}"


def check_zerocopy(rows):
    assert rows, "zerocopy table emitted no rows"
    direct = [r for r in rows if r["Payload"] == "direct"]
    assert direct, "no direct rows"
    for r in direct:
        assert r["CopiedBPerPkt"] == 0, f"direct row copied bytes: {r}"
        assert r["DirectBPerPkt"] > 0, f"direct row moved nothing through the ring: {r}"
    proc = [r for r in rows if is_proc(r)]
    for r in rows:
        ctx = f"{r['Driver']}/{r['Workload']} {r['Transport']}/{r['Payload']}"
        check_latency_and_gc(r, ctx)
        if is_proc(r):
            check_proc_rings(r, ctx)
        else:
            assert r["RingCrossings"] == 0 and r["DoorbellWakeups"] == 0, \
                f"{ctx}: in-process row reported descriptor-ring traffic: {r}"
            assert r.get("WorkerServedCalls", 0) == 0, \
                f"{ctx}: in-process row claims worker-served call bodies: {r}"
    return (f"{len(rows)} rows, {len(direct)} direct rows copy 0 B/pkt, "
            f"{len(proc)} process-separated")


def check_recovery(rows):
    assert rows, "recovery table emitted no rows"
    cells = {}
    for r in rows:
        cells.setdefault((r["Driver"], r["Workload"], r["Transport"]), {})[r["Scenario"]] = r
    for key, c in cells.items():
        assert set(c) == {"off", "armed", "fault"}, f"{key}: missing scenarios {set(c)}"
        off, armed, fault = c["off"], c["armed"], c["fault"]
        # Steady-state journaling overhead is zero: identical crossings.
        assert (off["Crossings"], off["Packets"]) == (armed["Crossings"], armed["Packets"]), \
            f"{key}: supervision changed steady state: {off} vs {armed}"
        # The injected fault recovered transparently and boundedly.
        assert fault["Faults"] >= 1 and fault["Recoveries"] >= 1, f"{key}: no recovery: {fault}"
        assert fault["FailStops"] == 0, f"{key}: fail-stopped: {fault}"
        assert 0 < fault["RecoveryLatencyMs"] < 10000, f"{key}: unbounded latency: {fault}"
        assert fault["JournalReplayed"] >= 2, f"{key}: journal not replayed: {fault}"
        assert fault["TxHeld"] == fault["TxReplayed"] + fault["TxHeldDropped"], \
            f"{key}: held accounting broken: {fault}"
        assert fault["SlotsReclaimed"] == 0, f"{key}: quiesce stranded ring slots: {fault}"
        if is_proc(fault):
            # The process-separated boundary must be real in every scenario:
            # chunks on the descriptor rings AND call bodies executed by the
            # worker's handler table. Steady-state scenarios frame no wire
            # bytes (control traffic happens at boot), but the fault
            # scenario's recovery must have SIGKILLed and respawned an
            # actual worker process — and the respawn's handshake rides the
            # socketpair mid-phase, so its wire bytes must show.
            for scenario, row in c.items():
                assert row["RingCrossings"] > 0, f"{key}/{scenario}: no ring crossings: {row}"
                assert row["WorkerServedCalls"] > 0, \
                    f"{key}/{scenario}: no call bodies executed in the worker: {row}"
            # Armed-vs-off parity holds for worker execution too: arming the
            # supervisor must not move any bodies across the boundary.
            assert off["WorkerServedCalls"] == armed["WorkerServedCalls"], \
                f"{key}: supervision changed worker-served bodies: {off} vs {armed}"
            assert fault["WireBytes"] > 0, \
                f"{key}: respawn handshake framed no wire bytes: {fault}"
            assert fault["WorkerRespawns"] >= 1, \
                f"{key}: fault recovered without respawning the worker process: {fault}"
            assert off["WorkerRespawns"] == 0 and armed["WorkerRespawns"] == 0, \
                f"{key}: worker respawned without a fault: {off} / {armed}"
        else:
            for scenario, row in c.items():
                assert row.get("WorkerServedCalls", 0) == 0, \
                    f"{key}/{scenario}: in-process row claims worker-served call bodies: {row}"
    proc_cells = sum(1 for (_, _, t) in cells if t.startswith("proc"))
    return (f"{len(rows)} rows across {len(cells)} cells ({proc_cells} process-separated); "
            "faults recovered, steady state unchanged")


def check_contend(rows):
    """The lane-sharding gate: concurrency must buy throughput, not locks.

    Every row must be internally consistent (work done, monotone wall
    percentiles). Proc rows must additionally prove the lock-free data
    plane: zero control-mutex acquisitions and zero allocations per op
    during the storm, with the lane table actually exercised. Per proc
    transport, the K=1 row anchors the scaling and p99 comparisons for the
    CONTEND_GATE_K row.
    """
    assert rows, "contend table emitted no rows"
    by_transport = {}
    for r in rows:
        ctx = f"{r['Transport']} K={r['Submitters']}"
        assert r["Ops"] > 0 and r["OpsPerSec"] > 0, f"{ctx}: no work done: {r}"
        assert 0 < r["WallP50Us"] <= r["WallP99Us"] <= r["WallP999Us"], \
            f"{ctx}: wall percentiles not positive and monotone: {r}"
        if is_proc(r):
            assert r["ControlLocks"] == 0, \
                f"{ctx}: steady-state submit acquired the control mutex {r['ControlLocks']} times: {r}"
            assert r["AllocsPerOp"] <= 0.01, \
                f"{ctx}: lane submit path allocates {r['AllocsPerOp']}/op: {r}"
            assert r["Lanes"] >= 1, f"{ctx}: proc row reports no lanes: {r}"
            assert r["LaneAcquisitions"] > 0, f"{ctx}: lane table never exercised: {r}"
        by_transport.setdefault(r["Transport"], {})[r["Submitters"]] = r
    gated = 0
    for tr, ks in by_transport.items():
        if not tr.startswith("proc"):
            continue
        assert 1 in ks, f"{tr}: no K=1 baseline row to anchor the scaling gate"
        assert CONTEND_GATE_K in ks, f"{tr}: no K={CONTEND_GATE_K} row to gate"
        base, top = ks[1], ks[CONTEND_GATE_K]
        scaling = top["OpsPerSec"] / base["OpsPerSec"]
        assert scaling >= CONTEND_SCALING_MIN, \
            (f"{tr}: K={CONTEND_GATE_K} throughput only {scaling:.2f}x K=1 "
             f"(bound {CONTEND_SCALING_MIN}x): lane sharding is not buying concurrency")
        denom = max(base["WallP99Us"], CONTEND_P99_FLOOR_US)
        assert top["WallP99Us"] <= CONTEND_P99_RATIO_MAX * denom, \
            (f"{tr}: contended p99 {top['WallP99Us']:.0f}us exceeds "
             f"{CONTEND_P99_RATIO_MAX}x uncontended {base['WallP99Us']:.0f}us "
             f"(floor {CONTEND_P99_FLOOR_US}us)")
        assert top["LaneActivePeak"] >= 2, \
            f"{tr}: K={CONTEND_GATE_K} never held two lanes at once: {top}"
        gated += 1
    assert gated > 0 or not any(is_proc(r) for r in rows), \
        "proc rows present but none gated"
    return (f"{len(rows)} rows across {len(by_transport)} transports; "
            f"{gated} proc scaling gates passed")


# The flight-recorder export's fixed track layout (internal/trace/export.go):
# one Chrome-trace pid per address space plus one for the Go runtime.
TRACE_PID_KERNEL = 1
TRACE_PID_WORKER = 2
TRACE_PID_RUNTIME = 3
TRACE_PROCESS_NAMES = {TRACE_PID_KERNEL: "kernel",
                       TRACE_PID_WORKER: "decaf worker",
                       TRACE_PID_RUNTIME: "go runtime"}


def check_trace(doc):
    """The flight-recorder schema gate over Chrome trace-event JSON.

    A trace from `decafbench -table proc -trace` must be a loadable Perfetto
    timeline that actually proves the cross-process story: labeled kernel /
    worker / runtime process tracks, duration spans on BOTH sides of the
    boundary (a trace whose worker track is empty means the shm trace rings
    never carried records back), paired s/f flow arrows stitching a kernel
    chunk to the worker visit that served it, a Go-runtime track (GC pauses
    or heap counters) to attribute tail latency against, and the lossy
    recorder's drop count in the metadata so a gappy timeline is never
    mistaken for a quiet one.
    """
    evs = doc.get("traceEvents")
    assert isinstance(evs, list) and evs, "trace carries no traceEvents"
    for e in evs:
        assert "ph" in e and "pid" in e and "name" in e, f"malformed trace event: {e}"
    procs = {e["pid"]: e.get("args", {}).get("name")
             for e in evs if e["ph"] == "M" and e["name"] == "process_name"}
    for pid, name in sorted(TRACE_PROCESS_NAMES.items()):
        assert procs.get(pid) == name, \
            f"missing process_name metadata for pid {pid} ({name!r}): have {procs}"
    spans = {}
    for e in evs:
        if e["ph"] == "X":
            assert e.get("ts", -1) >= 0 and e.get("dur", 0) >= 0, \
                f"X span with bad ts/dur: {e}"
            spans.setdefault(e["pid"], []).append(e)
    assert spans.get(TRACE_PID_KERNEL), "no kernel-side X spans: chunk submissions missing"
    assert spans.get(TRACE_PID_WORKER), \
        "no worker-side X spans: the shm trace rings carried nothing back across the boundary"
    flows = {e["ph"] for e in evs if e["name"] == "crossing"}
    assert {"s", "f"} <= flows, \
        f"cross-process flow arrows not paired (crossing phases: {sorted(flows)})"
    runtime_track = [e for e in evs
                     if e["pid"] == TRACE_PID_RUNTIME and e["ph"] in ("X", "C")]
    assert runtime_track, "no go-runtime track events (GC pauses / heap counters missing)"
    meta = doc.get("metadata", {})
    assert "trace_dropped" in meta, "metadata lost the trace_dropped overflow count"
    return (f"{len(evs)} events; {len(spans[TRACE_PID_KERNEL])} kernel / "
            f"{len(spans[TRACE_PID_WORKER])} worker spans, flows paired, "
            f"runtime track present, {meta['trace_dropped']} dropped")


CHECKS = {"zerocopy": check_zerocopy, "recovery": check_recovery,
          "contend": check_contend, "trace": check_trace}


def compare_baseline(table, rows, base_doc, tolerance):
    """Band the deterministic metrics of each row against the committed
    baseline. Rows are matched by identity; a row present in the baseline
    but missing from the current run fails (coverage regressed silently)."""
    assert base_doc.get("table") == table, \
        f"baseline is a {base_doc.get('table')!r} table, expected {table}"
    current = {row_key(table, r): r for r in rows}
    drift = []
    for base in base_doc["rows"]:
        key = row_key(table, base)
        cur = current.get(key)
        if cur is None:
            drift.append(f"{key}: row present in baseline but missing from this run")
            continue
        for metric in BANDED_METRICS.get(table, []):
            if metric not in base or metric not in cur:
                continue
            b, c = float(base[metric]), float(cur[metric])
            if abs(c - b) > tolerance * max(abs(b), 1.0):
                drift.append(f"{key}: {metric} = {c:g}, baseline {b:g} "
                             f"(tolerance {tolerance:.0%})")
    assert not drift, "baseline drift:\n  " + "\n  ".join(drift)
    return f"{len(base_doc['rows'])} baseline rows within {tolerance:.0%}"


def run_check(table, doc, baseline_doc=None, tolerance=DEFAULT_TOLERANCE):
    if table == "trace":
        # Trace documents are Chrome trace-event JSON, not bench tables:
        # no "table"/"rows" envelope and nothing deterministic to band.
        assert baseline_doc is None, "the trace check takes no --baseline"
        return check_trace(doc)
    assert doc.get("table") == table, \
        f"expected a {table} table, got {doc.get('table')!r}"
    summary = CHECKS[table](doc["rows"])
    if baseline_doc is not None:
        summary += "; " + compare_baseline(table, doc["rows"], baseline_doc, tolerance)
    return summary


def self_test():
    """Run the gate against the committed fixtures: the known-good files
    must pass (including against themselves as baselines), the known-bad
    files must be rejected. Guards the gate itself against rotting into a
    rubber stamp."""
    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)), "testdata")

    def load(name):
        with open(os.path.join(fixtures, name)) as f:
            return json.load(f)

    failures = []

    def expect_ok(desc, fn):
        try:
            fn()
        except AssertionError as e:
            failures.append(f"{desc}: unexpectedly rejected: {e}")

    def expect_reject(desc, fn):
        try:
            fn()
        except AssertionError:
            return
        failures.append(f"{desc}: unexpectedly passed")

    zc_good, zc_bad = load("zerocopy_good.json"), load("zerocopy_bad.json")
    rec_good, rec_bad = load("recovery_good.json"), load("recovery_bad.json")
    con_good, con_bad = load("contend_good.json"), load("contend_bad.json")
    tr_good, tr_bad = load("trace_good.json"), load("trace_bad.json")
    zc_drift = load("zerocopy_drift.json")

    expect_ok("zerocopy good", lambda: run_check("zerocopy", zc_good))
    expect_ok("recovery good", lambda: run_check("recovery", rec_good))
    expect_ok("contend good", lambda: run_check("contend", con_good))
    expect_ok("trace good", lambda: run_check("trace", tr_good))
    expect_reject("zerocopy bad", lambda: run_check("zerocopy", zc_bad))
    expect_reject("recovery bad", lambda: run_check("recovery", rec_bad))
    expect_reject("contend bad", lambda: run_check("contend", con_bad))
    # The bad trace has kernel spans but an empty worker track and an
    # unpaired flow start: the exact signature of trace rings that were
    # never carved in the shared region.
    expect_reject("trace bad", lambda: run_check("trace", tr_bad))
    expect_reject("trace on a bench table", lambda: run_check("trace", zc_good))
    expect_ok("zerocopy self-baseline",
              lambda: run_check("zerocopy", zc_good, baseline_doc=zc_good))
    expect_ok("contend self-baseline",
              lambda: run_check("contend", con_good, baseline_doc=con_good))
    expect_reject("zerocopy drifted baseline",
                  lambda: run_check("zerocopy", zc_good, baseline_doc=zc_drift))
    expect_reject("wrong table", lambda: run_check("recovery", zc_good))

    # Worker-side execution must be live: a proc row whose handler table
    # served nothing (bodies silently fell back in-process) is rejected.
    zc_dead_worker = copy.deepcopy(zc_good)
    for row in zc_dead_worker["rows"]:
        if row["Transport"].startswith("proc"):
            row["WorkerServedCalls"] = 0
    expect_reject("zerocopy proc row with no worker-served bodies",
                  lambda: run_check("zerocopy", zc_dead_worker))
    rec_dead_worker = copy.deepcopy(rec_good)
    for row in rec_dead_worker["rows"]:
        if row["Transport"].startswith("proc"):
            row["WorkerServedCalls"] = 0
    expect_reject("recovery proc rows with no worker-served bodies",
                  lambda: run_check("recovery", rec_dead_worker))

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print("ok (self-test): 15 fixture scenarios behaved")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()

    args, baseline_path, tolerance = [], None, DEFAULT_TOLERANCE
    it = iter(argv[1:])
    for a in it:
        if a == "--baseline":
            baseline_path = next(it, None)
        elif a == "--tolerance":
            tolerance = float(next(it, DEFAULT_TOLERANCE))
        else:
            args.append(a)

    if not args or args[0] not in CHECKS:
        print(f"usage: {argv[0]} <{'|'.join(CHECKS)}> [bench.json] "
              "[--baseline BENCH.json] [--tolerance 0.10] | --self-test",
              file=sys.stderr)
        return 2
    table = args[0]
    source = open(args[1]) if len(args) > 1 and args[1] != "-" else sys.stdin
    with source:
        doc = json.load(source)
    baseline_doc = None
    if baseline_path:
        with open(baseline_path) as f:
            baseline_doc = json.load(f)
    summary = run_check(table, doc, baseline_doc=baseline_doc, tolerance=tolerance)
    print(f"ok ({table}): {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
