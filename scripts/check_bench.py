#!/usr/bin/env python3
"""Machine-readable perf gate over decafbench -json output.

Usage:
    decafbench -table zerocopy -json | scripts/check_bench.py zerocopy
    decafbench -table recovery -transport proc -json | scripts/check_bench.py recovery bench.json

The checks are the CI acceptance bar for the zero-copy payload ring and the
shadow-driver recovery subsystem, across every transport — including the
process-separated one, whose rows must additionally show real wire traffic
and a worker process that died and was respawned. Keeping them in a
checked-in script (rather than inline YAML) makes the gate runnable locally
and diffable in review.
"""

import json
import sys


def is_proc(row):
    """Rows from the process-separated transport ("proc(bN)")."""
    return row["Transport"].startswith("proc")


def check_zerocopy(rows):
    assert rows, "zerocopy table emitted no rows"
    direct = [r for r in rows if r["Payload"] == "direct"]
    assert direct, "no direct rows"
    for r in direct:
        assert r["CopiedBPerPkt"] == 0, f"direct row copied bytes: {r}"
        assert r["DirectBPerPkt"] > 0, f"direct row moved nothing through the ring: {r}"
    proc = [r for r in rows if is_proc(r)]
    for r in proc:
        # The process-separated boundary must be real: every proc row shows
        # framed syscall traffic, so a proc leg that silently fell back to
        # an in-process path cannot pass.
        assert r["SyscallCrossings"] > 0, f"proc row crossed nothing over the wire: {r}"
        assert r["WireBytes"] > 0, f"proc row framed no wire bytes: {r}"
    return (f"{len(rows)} rows, {len(direct)} direct rows copy 0 B/pkt, "
            f"{len(proc)} process-separated")


def check_recovery(rows):
    assert rows, "recovery table emitted no rows"
    cells = {}
    for r in rows:
        cells.setdefault((r["Driver"], r["Workload"], r["Transport"]), {})[r["Scenario"]] = r
    for key, c in cells.items():
        assert set(c) == {"off", "armed", "fault"}, f"{key}: missing scenarios {set(c)}"
        off, armed, fault = c["off"], c["armed"], c["fault"]
        # Steady-state journaling overhead is zero: identical crossings.
        assert (off["Crossings"], off["Packets"]) == (armed["Crossings"], armed["Packets"]), \
            f"{key}: supervision changed steady state: {off} vs {armed}"
        # The injected fault recovered transparently and boundedly.
        assert fault["Faults"] >= 1 and fault["Recoveries"] >= 1, f"{key}: no recovery: {fault}"
        assert fault["FailStops"] == 0, f"{key}: fail-stopped: {fault}"
        assert 0 < fault["RecoveryLatencyMs"] < 10000, f"{key}: unbounded latency: {fault}"
        assert fault["JournalReplayed"] >= 2, f"{key}: journal not replayed: {fault}"
        assert fault["TxHeld"] == fault["TxReplayed"] + fault["TxHeldDropped"], \
            f"{key}: held accounting broken: {fault}"
        assert fault["SlotsReclaimed"] == 0, f"{key}: quiesce stranded ring slots: {fault}"
        if is_proc(fault):
            # The process-separated boundary must be real: framed syscall
            # traffic in every scenario, and the fault scenario's recovery
            # must have SIGKILLed and respawned an actual worker process.
            for scenario, row in c.items():
                assert row["SyscallCrossings"] > 0, f"{key}/{scenario}: no wire crossings: {row}"
                assert row["WireBytes"] > 0, f"{key}/{scenario}: no wire bytes: {row}"
            assert fault["WorkerRespawns"] >= 1, \
                f"{key}: fault recovered without respawning the worker process: {fault}"
            assert off["WorkerRespawns"] == 0 and armed["WorkerRespawns"] == 0, \
                f"{key}: worker respawned without a fault: {off} / {armed}"
    proc_cells = sum(1 for (_, _, t) in cells if t.startswith("proc"))
    return (f"{len(rows)} rows across {len(cells)} cells ({proc_cells} process-separated); "
            "faults recovered, steady state unchanged")


CHECKS = {"zerocopy": check_zerocopy, "recovery": check_recovery}


def main(argv):
    if len(argv) < 2 or argv[1] not in CHECKS:
        print(f"usage: {argv[0]} <{'|'.join(CHECKS)}> [bench.json]", file=sys.stderr)
        return 2
    table = argv[1]
    source = open(argv[2]) if len(argv) > 2 and argv[2] != "-" else sys.stdin
    with source:
        doc = json.load(source)
    assert doc.get("table") == table, f"expected a {table} table, got {doc.get('table')!r}"
    summary = CHECKS[table](doc["rows"])
    print(f"ok ({table}): {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
